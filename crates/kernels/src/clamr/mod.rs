//! CLAMR — cell-based adaptive mesh refinement shallow-water simulation
//! (paper §3.2).
//!
//! "CLAMR is a DOE mini-application in the fluid dynamics domain and is
//! representative of a LANL supercomputer workload. CLAMR simulates wave
//! propagation using adaptive mesh refinement."
//!
//! The port implements the structure the paper's analysis depends on. The
//! mesh is a list of power-of-two aligned cells (level 0 = the base grid,
//! each refinement halves the edge). Every timestep takes **four cooperative
//! sub-steps**, matching the mesh portions the paper grades by criticality:
//!
//! 1. **Sort** ([`sort`]): Morton keys are recomputed and the cell
//!    permutation re-sorted — the paper's most SDC-critical portion;
//! 2. **Tree** ([`tree`]): the cell arrays are reordered by the sorted
//!    permutation and the spatial tree is rebuilt — 41 % of Tree faults
//!    caused DUEs in the paper;
//! 3. **Flux**: a damped linearised shallow-water update, neighbours located
//!    through tree queries, parallel over logical threads;
//! 4. **Remesh**: cells whose height gradient exceeds a threshold refine
//!    into four children; quads of calm siblings coarsen back.
//!
//! A central dam-break column launches a circular wave; the refinement front
//! follows it, so the active cell count rises to a maximum partway through
//! the run — the paper's explanation for CLAMR's time-window-3 sensitivity
//! peak ("CLAMR becomes more sensitive when the number of active cells
//! reaches its maximum value").
//!
//! The output is the height field resampled onto the uniform finest grid.

pub mod sort;
pub mod tree;

use crate::par::{par_for_each, static_partition};
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};

/// Gravitational constant of the shallow-water system.
const GRAVITY: f64 = 9.8;
/// Lax-Friedrichs damping factor (stabilises the explicit update).
const DAMPING: f64 = 0.15;
/// Dam-break column height above the ambient unit depth.
const BUMP_AMPLITUDE: f64 = 0.5;
/// Bottom-friction coefficient draining wake energy each timestep.
const FRICTION: f64 = 0.04;

/// CLAMR sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClamrParams {
    /// Base (level-0) grid edge; must be a power of two.
    pub base: usize,
    /// Maximum refinement level.
    pub max_level: u32,
    /// Simulated timesteps (each = 4 cooperative sub-steps).
    pub timesteps: usize,
    pub logical_threads: usize,
    pub workers: usize,
    pub seed: u64,
}

impl ClamrParams {
    pub fn test() -> Self {
        ClamrParams { base: 8, max_level: 1, timesteps: 8, logical_threads: 8, workers: 1, seed: 0xC1A }
    }

    pub fn small() -> Self {
        ClamrParams { base: 8, max_level: 2, timesteps: 20, logical_threads: 16, workers: 1, seed: 0xC1A }
    }

    pub fn paper() -> Self {
        ClamrParams { base: 8, max_level: 2, timesteps: 36, logical_threads: 16, workers: 1, seed: 0xC1A }
    }

    /// Finest-grid edge length.
    pub fn fine(&self) -> usize {
        self.base << self.max_level
    }
}

/// Per-logical-thread control block for the flux phase.
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    ncells_local: u64,
    fine_local: u64,
    tstep_local: u64,
    /// Flux-loop scratch, rewritten before every use (dead at interrupts).
    hc_scratch: f64,
    div_scratch: f64,
    cell_scratch: u64,
}

/// The CLAMR fault target.
#[derive(Clone)]
pub struct Clamr {
    p: ClamrParams,
    // --- mesh (the paper's "others" portion) ---
    ci: Vec<u32>,
    cj: Vec<u32>,
    clevel: Vec<u32>,
    h: Vec<f64>,
    uvel: Vec<f64>,
    vvel: Vec<f64>,
    grad: Vec<f64>,
    /// Injectable global cell count (authoritative loop bound).
    ncells: u64,
    // --- Sort state ---
    sort_keys: Vec<u64>,
    sorted_idx: Vec<u32>,
    sort_scratch: Vec<u32>,
    // --- Tree state ---
    tree_child: Vec<i32>,
    tree_cell: Vec<i32>,
    // --- constants ---
    dt: f64,
    gravity: f64,
    damping: f64,
    friction: f64,
    refine_thresh: f64,
    coarsen_thresh: f64,
    /// Pointer base for the state arrays (segfault path).
    ptr_state: u64,
    /// Raw setup parameters, dead after construction (masked targets).
    raw: [f64; 4],
    ctrl: Vec<Ctrl>,
    done: usize,
    total: usize,
    /// Active cell count after each timestep (for the window analysis).
    cell_history: Vec<usize>,
    /// Pristine snapshot taken at the end of `new()` — *after* the pre-run
    /// refinement setup, so `reset()` restores the adapted starting mesh
    /// (its own `pristine` is `None`).
    pristine: Option<Box<Clamr>>,
}

impl Clamr {
    pub fn new(p: ClamrParams) -> Self {
        assert!(p.base.is_power_of_two(), "base grid must be a power of two");
        let fine = p.fine();
        let n0 = p.base * p.base;
        let mut ci = Vec::with_capacity(n0);
        let mut cj = Vec::with_capacity(n0);
        let mut clevel = Vec::with_capacity(n0);
        let mut h = Vec::with_capacity(n0);
        // Dam-break column in the domain centre (fine coordinates).
        let cx = fine as f64 / 2.0;
        let cy = fine as f64 / 2.0;
        let sigma = fine as f64 / 8.0;
        let s0 = 1u32 << p.max_level; // level-0 cell extent in fine cells
        for j in 0..p.base as u32 {
            for i in 0..p.base as u32 {
                ci.push(i);
                cj.push(j);
                clevel.push(0);
                let px = (i as f64 + 0.5) * s0 as f64;
                let py = (j as f64 + 0.5) * s0 as f64;
                let r2 = (px - cx).powi(2) + (py - cy).powi(2);
                h.push(1.0 + BUMP_AMPLITUDE * (-r2 / (2.0 * sigma * sigma)).exp());
            }
        }
        let wave_speed = (GRAVITY * (1.0 + BUMP_AMPLITUDE)).sqrt();
        let dt = 0.25 / wave_speed; // CFL over a unit fine cell
        let ctrl = (0..p.logical_threads)
            .map(|_| Ctrl {
                ncells_local: n0 as u64,
                fine_local: fine as u64,
                tstep_local: 0,
                hc_scratch: 0.0,
                div_scratch: 0.0,
                cell_scratch: 0,
            })
            .collect();
        let mut c = Clamr {
            p,
            ctrl,
            uvel: vec![0.0; n0],
            vvel: vec![0.0; n0],
            grad: vec![0.0; n0],
            ncells: n0 as u64,
            sort_keys: vec![0; n0],
            sorted_idx: (0..n0 as u32).collect(),
            sort_scratch: vec![0; n0],
            tree_child: Vec::new(),
            tree_cell: Vec::new(),
            dt,
            gravity: GRAVITY,
            damping: DAMPING,
            friction: FRICTION,
            refine_thresh: 0.03,
            coarsen_thresh: 0.015,
            ptr_state: 0,
            raw: [sigma, BUMP_AMPLITUDE, wave_speed, 0.25],
            ci,
            cj,
            clevel,
            h,
            done: 0,
            total: p.timesteps * 4,
            cell_history: Vec::new(),
            pristine: None,
        };
        // Pre-refine around the initial bump so the run starts on a
        // realistic adapted mesh (CLAMR does the same during setup).
        for _ in 0..p.max_level {
            c.phase_sort();
            c.phase_tree();
            c.compute_gradients();
            c.phase_remesh();
        }
        c.pristine = Some(Box::new(c.clone()));
        c
    }

    /// Active cell counts recorded after each timestep.
    pub fn cell_history(&self) -> &[usize] {
        &self.cell_history
    }

    /// Current number of mesh cells.
    pub fn ncells_actual(&self) -> usize {
        self.h.len()
    }

    fn fine(&self) -> u32 {
        self.p.fine() as u32
    }

    /// Fine-grid extent of cell `c`.
    fn extent(&self, c: usize) -> u32 {
        // A corrupted level > max_level would shift out of range; clamp the
        // shift amount so the result is a huge-but-defined extent (caught by
        // alignment asserts downstream) instead of UB.
        1u32 << (self.p.max_level.saturating_sub(self.clevel[c])).min(31)
    }

    /// Fine-grid origin of cell `c`.
    fn origin(&self, c: usize) -> (u32, u32) {
        let s = self.extent(c);
        (self.ci[c].saturating_mul(s), self.cj[c].saturating_mul(s))
    }

    /// Sub-step 1: recompute Morton keys and sort the cell permutation.
    fn phase_sort(&mut self) {
        let n = self.h.len();
        self.sort_keys.resize(n, 0);
        self.sort_scratch.resize(n, 0);
        self.sorted_idx.clear();
        self.sorted_idx.extend(0..n as u32);
        // The injectable global cell count drives the key loop: too large
        // panics (OOB = DUE), too small leaves stale keys (SDC).
        let bound = (self.ncells as usize).min(self.sort_keys.len());
        for c in 0..bound {
            let (ox, oy) = self.origin(c);
            self.sort_keys[c] = sort::morton_key(ox, oy);
        }
        if self.ncells as usize > self.sort_keys.len() {
            // Mimic walking past the allocation.
            panic!("cell count {} exceeds allocated mesh {}", self.ncells, self.sort_keys.len());
        }
        sort::merge_sort_by_key(&mut self.sorted_idx, &self.sort_keys, &mut self.sort_scratch);
    }

    /// Sub-step 2: rebuild the spatial tree over the current cell order.
    ///
    /// The sorted permutation is NOT applied here: like CLAMR's `index`
    /// array, `sorted_idx` stays the canonical traversal order that the flux
    /// phase walks (and that re-materialises the arrays in Morton order), so
    /// corruption of the Sort state stays live across sub-steps — the basis
    /// of the paper's finding that Sort is CLAMR's most critical portion.
    fn phase_tree(&mut self) {
        let spec: Vec<(u32, u32, u32, u32)> = (0..self.h.len())
            .map(|c| {
                let (ox, oy) = self.origin(c);
                (ox, oy, self.extent(c), c as u32)
            })
            .collect();
        let fine = self.fine();
        tree::build(&mut self.tree_child, &mut self.tree_cell, fine, &spec);
    }

    /// Sub-step 3: damped linearised shallow-water update (parallel).
    ///
    /// Traversal slot `s` processes cell `sorted_idx[s]` and writes the
    /// updated state (and the gathered cell coordinates) to slot `s`, so the
    /// arrays come out of the flux phase in Morton order. A corrupted
    /// permutation entry walks out of the mesh (crash DUE) or duplicates /
    /// drops cells (an overlapping mesh the next tree build rejects).
    fn phase_flux(&mut self) {
        let n = self.h.len();
        let mut new_h = vec![0.0f64; n];
        let mut new_u = vec![0.0f64; n];
        let mut new_v = vec![0.0f64; n];
        let mut new_g = vec![0.0f64; n];
        let mut new_ci = vec![0u32; n];
        let mut new_cj = vec![0u32; n];
        let mut new_lv = vec![0u32; n];

        struct Item<'a> {
            ctl: &'a mut Ctrl,
            h: &'a mut [f64],
            u: &'a mut [f64],
            v: &'a mut [f64],
            g: &'a mut [f64],
            ci: &'a mut [u32],
            cj: &'a mut [u32],
            lv: &'a mut [u32],
            lo: usize,
        }
        // Detach the control blocks so `self` stays shareable during the
        // parallel region.
        let mut ctrl = std::mem::take(&mut self.ctrl);
        let mut items: Vec<Item<'_>> = Vec::with_capacity(ctrl.len());
        {
            let (mut rh, mut ru, mut rv, mut rg): (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) =
                (&mut new_h, &mut new_u, &mut new_v, &mut new_g);
            let (mut rci, mut rcj, mut rlv): (&mut [u32], &mut [u32], &mut [u32]) = (&mut new_ci, &mut new_cj, &mut new_lv);
            for (t, ctl) in ctrl.iter_mut().enumerate() {
                let (s, e) = static_partition(n, self.p.logical_threads, t);
                let (h, th) = rh.split_at_mut(e - s);
                let (u, tu) = ru.split_at_mut(e - s);
                let (v, tv) = rv.split_at_mut(e - s);
                let (g, tg) = rg.split_at_mut(e - s);
                let (ci, tci) = rci.split_at_mut(e - s);
                let (cj, tcj) = rcj.split_at_mut(e - s);
                let (lv, tlv) = rlv.split_at_mut(e - s);
                rh = th;
                ru = tu;
                rv = tv;
                rg = tg;
                rci = tci;
                rcj = tcj;
                rlv = tlv;
                items.push(Item { ctl, h, u, v, g, ci, cj, lv, lo: s });
            }
        }
        let me = &*self;
        par_for_each(&mut items, self.p.workers, |_, item| {
            me.flux_range(item.ctl, item.lo, item.h, item.u, item.v, item.g, item.ci, item.cj, item.lv);
        });
        drop(items);
        self.ctrl = ctrl;
        self.h = new_h;
        self.uvel = new_u;
        self.vvel = new_v;
        self.grad = new_g;
        self.ci = new_ci;
        self.cj = new_cj;
        self.clevel = new_lv;
    }

    /// Flux update for traversal slots `lo..lo + out.len()`.
    #[allow(clippy::too_many_arguments)]
    fn flux_range(
        &self,
        ctl: &mut Ctrl,
        lo: usize,
        oh: &mut [f64],
        ou: &mut [f64],
        ov: &mut [f64],
        og: &mut [f64],
        oci: &mut [u32],
        ocj: &mut [u32],
        olv: &mut [u32],
    ) {
        let fine = ctl.fine_local as u32; // injectable domain extent
        let pm = self.ptr_state as usize;
        for k in 0..oh.len() {
            let slot = lo + k;
            if slot >= ctl.ncells_local as usize {
                break; // corrupted cell count: remaining slots keep zeros (SDC)
            }
            let c = self.sorted_idx[slot] as usize; // corrupted permutation ⇒ OOB (DUE)
            oci[k] = self.ci[c];
            ocj[k] = self.cj[c];
            olv[k] = self.clevel[c];
            let s = self.extent(c);
            let (ox, oy) = self.origin(c);
            let half = s / 2;
            let hc = self.h[pm + c];
            let uc = self.uvel[pm + c];
            let vc = self.vvel[pm + c];

            // Neighbour lookups through the tree; domain boundaries reflect.
            // Open (absorbing) boundary: outside the domain lies still,
            // ambient-depth water, so the wave exits instead of reflecting.
            let sample = |x: i64, y: i64, _mu: bool, _mv: bool| -> (f64, f64, f64) {
                if x < 0 || y < 0 || x >= fine as i64 || y >= fine as i64 {
                    return (1.0, 0.0, 0.0);
                }
                match tree::query(&self.tree_child, &self.tree_cell, self.fine(), x as u32, y as u32) {
                    Some(nc) => {
                        let nc = nc as usize;
                        (self.h[pm + nc], self.uvel[pm + nc], self.vvel[pm + nc])
                    }
                    None => (hc, uc, vc),
                }
            };
            let (hl, ul, _) = sample(ox as i64 - 1, (oy + half) as i64, true, false);
            let (hr, ur, _) = sample((ox + s) as i64, (oy + half) as i64, true, false);
            let (hd, _, vd) = sample((ox + half) as i64, oy as i64 - 1, false, true);
            let (hu_, _, vu) = sample((ox + half) as i64, (oy + s) as i64, false, true);

            let dx = s as f64;
            let div = (ur - ul) / (2.0 * dx) + (vu - vd) / (2.0 * dx);
            let dhdx = (hr - hl) / (2.0 * dx);
            let dhdy = (hu_ - hd) / (2.0 * dx);
            let havg = 0.25 * (hl + hr + hd + hu_);
            let uavg = 0.25 * (ul + ur + uc + uc);
            let vavg = 0.25 * (vd + vu + vc + vc);

            ctl.hc_scratch = hc;
            ctl.div_scratch = div;
            ctl.cell_scratch = c as u64;
            oh[k] = hc + self.damping * (havg - hc) - self.dt * hc * div;
            ou[k] = (1.0 - self.friction) * (uc + self.damping * (uavg - uc) - self.dt * self.gravity * dhdx);
            ov[k] = (1.0 - self.friction) * (vc + self.damping * (vavg - vc) - self.dt * self.gravity * dhdy);
            og[k] = (hl - hc).abs().max((hr - hc).abs()).max((hd - hc).abs()).max((hu_ - hc).abs());
        }
        ctl.tstep_local += 1;
    }

    /// Computes gradients only (used for the setup pre-refinement).
    fn compute_gradients(&mut self) {
        self.phase_flux_gradients_only();
    }

    fn phase_flux_gradients_only(&mut self) {
        let n = self.h.len();
        let mut g = vec![0.0; n];
        for (c, gc) in g.iter_mut().enumerate() {
            let s = self.extent(c);
            let (ox, oy) = self.origin(c);
            let half = s / 2;
            let hc = self.h[c];
            let sample_h = |x: i64, y: i64| -> f64 {
                if x < 0 || y < 0 || x >= self.fine() as i64 || y >= self.fine() as i64 {
                    return hc;
                }
                match tree::query(&self.tree_child, &self.tree_cell, self.fine(), x as u32, y as u32) {
                    Some(nc) => self.h[nc as usize],
                    None => hc,
                }
            };
            let hl = sample_h(ox as i64 - 1, (oy + half) as i64);
            let hr = sample_h((ox + s) as i64, (oy + half) as i64);
            let hd = sample_h((ox + half) as i64, oy as i64 - 1);
            let hu_ = sample_h((ox + half) as i64, (oy + s) as i64);
            *gc = (hl - hc).abs().max((hr - hc).abs()).max((hd - hc).abs()).max((hu_ - hc).abs());
        }
        self.grad = g;
    }

    /// Sub-step 4: refine steep cells, coarsen calm sibling quads.
    fn phase_remesh(&mut self) {
        let n = self.h.len();
        // Sibling groups eligible for coarsening: key = (level, i/2, j/2).
        let mut groups: std::collections::HashMap<(u32, u32, u32), Vec<usize>> = std::collections::HashMap::new();
        for c in 0..n {
            if self.clevel[c] > 0 && self.grad[c] < self.coarsen_thresh {
                groups.entry((self.clevel[c], self.ci[c] / 2, self.cj[c] / 2)).or_default().push(c);
            }
        }
        let mut coarsen_first: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
        let mut coarsen_member: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (_, cells) in groups {
            if cells.len() == 4 {
                let first = *cells.iter().min().expect("nonempty");
                for &c in &cells {
                    coarsen_member.insert(c);
                }
                coarsen_first.insert(first, cells);
            }
        }

        let (mut ci2, mut cj2, mut lv2) = (Vec::new(), Vec::new(), Vec::new());
        let (mut h2, mut u2, mut v2, mut g2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for c in 0..n {
            if let Some(cells) = coarsen_first.get(&c) {
                ci2.push(self.ci[c] / 2);
                cj2.push(self.cj[c] / 2);
                lv2.push(self.clevel[c] - 1);
                h2.push(cells.iter().map(|&x| self.h[x]).sum::<f64>() / 4.0);
                u2.push(cells.iter().map(|&x| self.uvel[x]).sum::<f64>() / 4.0);
                v2.push(cells.iter().map(|&x| self.vvel[x]).sum::<f64>() / 4.0);
                g2.push(cells.iter().map(|&x| self.grad[x]).sum::<f64>() / 4.0);
            } else if coarsen_member.contains(&c) {
                // Emitted with its group's first sibling.
            } else if self.clevel[c] < self.p.max_level && self.grad[c] > self.refine_thresh {
                for (di, dj) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
                    ci2.push(self.ci[c] * 2 + di);
                    cj2.push(self.cj[c] * 2 + dj);
                    lv2.push(self.clevel[c] + 1);
                    h2.push(self.h[c]);
                    u2.push(self.uvel[c]);
                    v2.push(self.vvel[c]);
                    g2.push(self.grad[c]);
                }
            } else {
                ci2.push(self.ci[c]);
                cj2.push(self.cj[c]);
                lv2.push(self.clevel[c]);
                h2.push(self.h[c]);
                u2.push(self.uvel[c]);
                v2.push(self.vvel[c]);
                g2.push(self.grad[c]);
            }
        }
        self.ci = ci2;
        self.cj = cj2;
        self.clevel = lv2;
        self.h = h2;
        self.uvel = u2;
        self.vvel = v2;
        self.grad = g2;
        self.ncells = self.h.len() as u64;
        for ctl in &mut self.ctrl {
            ctl.ncells_local = self.ncells;
        }
    }
}

impl FaultTarget for Clamr {
    fn name(&self) -> &'static str {
        "clamr"
    }

    fn total_steps(&self) -> usize {
        self.total
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Monomorphic run-ahead loop (ZOFI-style full-speed phase): one
        // decrement-and-branch plus a direct, inlinable step call per
        // step — no virtual dispatch through `dyn FaultTarget`.
        while self.done < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn step(&mut self) -> StepOutcome {
        match self.done % 4 {
            0 => self.phase_sort(),
            1 => self.phase_tree(),
            2 => self.phase_flux(),
            _ => {
                self.phase_remesh();
                self.cell_history.push(self.h.len());
            }
        }
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(20 + 3 * self.ctrl.len());
        // Mesh "others".
        vars.push(Variable::from_slice(VarInfo::global("cell_i", VarClass::MeshOther, file!(), 1), &mut self.ci));
        vars.push(Variable::from_slice(VarInfo::global("cell_j", VarClass::MeshOther, file!(), 2), &mut self.cj));
        vars.push(Variable::from_slice(VarInfo::global("cell_level", VarClass::MeshOther, file!(), 3), &mut self.clevel));
        vars.push(Variable::from_slice(VarInfo::global("state_h", VarClass::MeshOther, file!(), 4), &mut self.h));
        vars.push(Variable::from_slice(VarInfo::global("state_u", VarClass::MeshOther, file!(), 5), &mut self.uvel));
        vars.push(Variable::from_slice(VarInfo::global("state_v", VarClass::MeshOther, file!(), 6), &mut self.vvel));
        vars.push(Variable::from_slice(VarInfo::global("gradient", VarClass::MeshOther, file!(), 7), &mut self.grad));
        vars.push(Variable::from_scalar(VarInfo::global("ncells", VarClass::ControlVariable, file!(), 8), &mut self.ncells));
        // Sort state.
        vars.push(Variable::from_slice(VarInfo::global("sort_keys", VarClass::SortState, file!(), 10), &mut self.sort_keys));
        vars.push(Variable::from_slice(VarInfo::global("sorted_idx", VarClass::SortState, file!(), 11), &mut self.sorted_idx));
        vars.push(Variable::from_slice(VarInfo::global("sort_scratch", VarClass::SortState, file!(), 12), &mut self.sort_scratch));
        // Tree state.
        vars.push(Variable::from_slice(VarInfo::global("tree_child", VarClass::TreeState, file!(), 14), &mut self.tree_child));
        vars.push(Variable::from_slice(VarInfo::global("tree_cell", VarClass::TreeState, file!(), 15), &mut self.tree_cell));
        // Constants and pointer.
        vars.push(Variable::from_scalar(VarInfo::global("dt", VarClass::Constant, file!(), 17), &mut self.dt));
        vars.push(Variable::from_scalar(VarInfo::global("gravity", VarClass::Constant, file!(), 18), &mut self.gravity));
        vars.push(Variable::from_scalar(VarInfo::global("refine_thresh", VarClass::Constant, file!(), 19), &mut self.refine_thresh));
        vars.push(Variable::from_scalar(VarInfo::global("coarsen_thresh", VarClass::Constant, file!(), 20), &mut self.coarsen_thresh));
        vars.push(Variable::from_scalar(VarInfo::global("state_ptr", VarClass::Pointer, file!(), 21), &mut self.ptr_state));
        {
            let [sigma, amp, wavespeed, cfl] = &mut self.raw;
            vars.push(Variable::from_scalar(VarInfo::global("sigma", VarClass::Constant, file!(), 22), sigma));
            vars.push(Variable::from_scalar(VarInfo::global("amplitude", VarClass::Constant, file!(), 23), amp));
            vars.push(Variable::from_scalar(VarInfo::global("wave_speed", VarClass::Constant, file!(), 24), wavespeed));
            vars.push(Variable::from_scalar(VarInfo::global("cfl", VarClass::Constant, file!(), 25), cfl));
        }
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "clamr_flux";
            vars.push(Variable::from_scalar(VarInfo::local("ncells_local", VarClass::ControlVariable, f, t16, file!(), 30), &mut ctl.ncells_local));
            vars.push(Variable::from_scalar(VarInfo::local("fine_local", VarClass::ControlVariable, f, t16, file!(), 31), &mut ctl.fine_local));
            vars.push(Variable::from_scalar(VarInfo::local("tstep_local", VarClass::ControlVariable, f, t16, file!(), 32), &mut ctl.tstep_local));
            vars.push(Variable::from_scalar(VarInfo::local("hc_val", VarClass::Buffer, f, t16, file!(), 33), &mut ctl.hc_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("div_val", VarClass::Buffer, f, t16, file!(), 34), &mut ctl.div_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("cell_idx", VarClass::ControlVariable, f, t16, file!(), 35), &mut ctl.cell_scratch));
        }
        vars
    }

    fn output(&self) -> Output {
        let fine = self.p.fine();
        let mut grid = vec![0.0f64; fine * fine];
        for c in 0..self.h.len() {
            let s = self.extent(c) as usize;
            let (ox, oy) = self.origin(c);
            for y in oy as usize..oy as usize + s {
                for x in ox as usize..ox as usize + s {
                    grid[y * fine + x] = self.h[c]; // corrupted coords may panic here (DUE)
                }
            }
        }
        Output::F64Grid { dims: [fine, fine, 1], data: grid }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        // Mesh arrays change length as cells refine/coarsen; `clone_from`
        // truncates/extends in place, reusing each vector's allocation.
        self.ci.clone_from(&pristine.ci);
        self.cj.clone_from(&pristine.cj);
        self.clevel.clone_from(&pristine.clevel);
        self.h.clone_from(&pristine.h);
        self.uvel.clone_from(&pristine.uvel);
        self.vvel.clone_from(&pristine.vvel);
        self.grad.clone_from(&pristine.grad);
        self.ncells = pristine.ncells;
        self.sort_keys.clone_from(&pristine.sort_keys);
        self.sorted_idx.clone_from(&pristine.sorted_idx);
        self.sort_scratch.clone_from(&pristine.sort_scratch);
        self.tree_child.clone_from(&pristine.tree_child);
        self.tree_cell.clone_from(&pristine.tree_cell);
        self.dt = pristine.dt;
        self.gravity = pristine.gravity;
        self.damping = pristine.damping;
        self.friction = pristine.friction;
        self.refine_thresh = pristine.refine_thresh;
        self.coarsen_thresh = pristine.coarsen_thresh;
        self.ptr_state = 0;
        self.raw = pristine.raw;
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.done = 0;
        self.cell_history.clear();
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut c: Clamr) -> (Output, Vec<usize>) {
        while c.step() == StepOutcome::Continue {}
        let hist = c.cell_history().to_vec();
        (c.output(), hist)
    }

    #[test]
    fn mesh_covers_domain_exactly() {
        let p = ClamrParams::test();
        let mut c = Clamr::new(p);
        for _ in 0..p.timesteps * 4 {
            let area: u64 = (0..c.h.len()).map(|k| (c.extent(k) as u64).pow(2)).sum();
            assert_eq!(area, (p.fine() * p.fine()) as u64, "mesh must tile the domain at step {}", c.done);
            c.step();
        }
    }

    #[test]
    fn refinement_follows_the_wave() {
        let p = ClamrParams::paper();
        let c = Clamr::new(p);
        let n0 = p.base * p.base;
        assert!(c.ncells_actual() > n0, "setup must pre-refine around the bump");
        let (_, hist) = run_to_done(c);
        let max = *hist.iter().max().expect("history");
        assert!(max > n0, "refinement must add cells");
    }

    #[test]
    fn cell_count_peaks_in_the_first_half() {
        // The paper's CLAMR sensitivity peaks at window 3 of 9, when the
        // active cell count reaches its maximum.
        let (_, hist) = run_to_done(Clamr::new(ClamrParams::paper()));
        let max = *hist.iter().max().expect("history");
        let argmax = hist.iter().position(|&x| x == max).expect("present");
        assert!(argmax * 9 / hist.len() <= 4, "cell count should peak in the first half, peaked at timestep {argmax} of {}: {hist:?}", hist.len());
    }

    #[test]
    fn deterministic_across_runs_and_workers() {
        let p = ClamrParams::test();
        let (a, _) = run_to_done(Clamr::new(p));
        let (b, _) = run_to_done(Clamr::new(p));
        let (c, _) = run_to_done(Clamr::new(ClamrParams { workers: 3, ..p }));
        assert!(a.matches(&b));
        assert!(a.matches(&c));
    }

    #[test]
    fn water_volume_stays_bounded() {
        // Open boundaries let the wave exit, so volume may only shrink
        // toward the ambient level — never grow or collapse.
        let p = ClamrParams::test();
        let c = Clamr::new(p);
        let fine = (p.fine() * p.fine()) as f64;
        let vol0: f64 = (0..c.h.len()).map(|k| c.h[k] * (c.extent(k) as f64).powi(2)).sum();
        let (out, _) = run_to_done(c);
        let Output::F64Grid { data, .. } = out else { panic!() };
        let vol1: f64 = data.iter().sum();
        assert!(vol1 <= vol0 * 1.01, "volume grew: {vol0} -> {vol1}");
        assert!(vol1 >= fine * 0.98, "volume fell below ambient: {vol1} vs {fine}");
    }

    #[test]
    fn heights_stay_physical() {
        let (out, _) = run_to_done(Clamr::new(ClamrParams::paper()));
        let Output::F64Grid { data, .. } = out else { panic!() };
        for &v in &data {
            assert!(v.is_finite() && v > 0.2 && v < 2.5, "height {v} out of range");
        }
    }

    #[test]
    fn corrupted_sorted_idx_corrupts_or_crashes() {
        let p = ClamrParams::test();
        let (golden, _) = run_to_done(Clamr::new(p));
        let mut c = Clamr::new(p);
        c.step(); // sort done, permutation live
        let n = c.sorted_idx.len();
        // Duplicate one entry: the gather now replicates one cell and drops
        // another — an overlapping, non-covering mesh.
        c.sorted_idx[0] = c.sorted_idx[n / 2];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while c.step() == StepOutcome::Continue {}
            c.output()
        }));
        match r {
            Err(_) => {} // tree build rejects the overlap, or indexing crashes
            Ok(out) => assert!(!out.matches(&golden), "corrupted mesh must change the output"),
        }
    }

    #[test]
    fn corrupted_tree_link_crashes_or_corrupts() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = ClamrParams::test();
        let (golden, _) = run_to_done(Clamr::new(p));
        let mut c = Clamr::new(p);
        c.step();
        c.step(); // tree built
        for link in c.tree_child.iter_mut().take(4) {
            *link = 9_999_999;
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while c.step() == StepOutcome::Continue {}
            c.output()
        }));
        match r {
            Err(_) => {}
            Ok(out) => assert!(!out.matches(&golden)),
        }
    }

    #[test]
    fn corrupted_ncells_overrun_is_a_crash() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = ClamrParams::test();
        let mut c = Clamr::new(p);
        c.ncells = 1 << 40;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while c.step() == StepOutcome::Continue {}
        }));
        assert!(r.is_err());
    }
}
