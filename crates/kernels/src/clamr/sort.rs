//! Cell-key sorting — the *Sort* portion of CLAMR (paper §6, CLAMR).
//!
//! CLAMR keeps its cells in Morton (Z-order) so neighbouring cells stay
//! close in memory; every timestep re-sorts the (possibly refined) cell list.
//! The paper found Sort to be CLAMR's most SDC-critical portion (39 % SDC,
//! 43 % DUE per injection) — corrupting the key array or the index
//! permutation mid-timestep silently permutes the whole mesh state or drives
//! the gather out of bounds.

/// Interleaves the low 32 bits of `x` and `y` into a Morton key
/// (`x` in even bit positions).
pub fn morton_key(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// Bottom-up merge sort of `idx` by `keys[idx[k]]`, using the injectable
/// `scratch` buffer for merges. Stable.
///
/// Panics (a DUE) if a corrupted index escapes `keys`' bounds.
pub fn merge_sort_by_key(idx: &mut [u32], keys: &[u64], scratch: &mut [u32]) {
    let n = idx.len();
    assert!(scratch.len() >= n, "sort scratch too small: {} < {n}", scratch.len());
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            // Merge idx[lo..mid] and idx[mid..hi] into scratch[lo..hi].
            let (mut a, mut b, mut out) = (lo, mid, lo);
            while a < mid && b < hi {
                if keys[idx[a] as usize] <= keys[idx[b] as usize] {
                    scratch[out] = idx[a];
                    a += 1;
                } else {
                    scratch[out] = idx[b];
                    b += 1;
                }
                out += 1;
            }
            while a < mid {
                scratch[out] = idx[a];
                a += 1;
                out += 1;
            }
            while b < hi {
                scratch[out] = idx[b];
                b += 1;
                out += 1;
            }
            idx[lo..hi].copy_from_slice(&scratch[lo..hi]);
            lo = hi;
        }
        width *= 2;
    }
}

/// Applies the permutation `perm` to `data` via gather into `out`:
/// `out[k] = data[perm[k]]`. Panics on out-of-range permutation entries.
pub fn gather<T: Copy>(perm: &[u32], data: &[T], out: &mut Vec<T>) {
    out.clear();
    out.extend(perm.iter().map(|&p| data[p as usize]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn morton_keys_are_z_order() {
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
        assert_eq!(morton_key(2, 0), 4);
        // Monotone within a quadrant: (x,y) and (x+1,y) in same 2x2 quad.
        assert!(morton_key(4, 4) < morton_key(5, 5));
    }

    #[test]
    fn morton_keys_are_unique_on_a_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..64 {
            for y in 0..64 {
                assert!(seen.insert(morton_key(x, y)));
            }
        }
    }

    #[test]
    fn sort_matches_std_sort() {
        let mut rng = carolfi::rng::fork(5, 5);
        for n in [0usize, 1, 2, 7, 64, 255, 1000] {
            let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut idx: Vec<u32> = (0..n as u32).collect();
            let mut scratch = vec![0u32; n];
            merge_sort_by_key(&mut idx, &keys, &mut scratch);
            let mut expect: Vec<u32> = (0..n as u32).collect();
            expect.sort_by_key(|&i| keys[i as usize]);
            // Stability: equal keys keep original order; std's sort_by_key
            // is also stable, so the results must agree exactly.
            assert_eq!(idx, expect, "n={n}");
        }
    }

    #[test]
    fn corrupted_index_panics_in_sort() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let keys = vec![3u64, 1, 2];
        let mut idx = vec![0u32, 9, 2]; // 9 is out of range
        let mut scratch = vec![0u32; 3];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| merge_sort_by_key(&mut idx, &keys, &mut scratch)));
        assert!(r.is_err());
    }

    #[test]
    fn gather_applies_permutation() {
        let data = [10i32, 20, 30];
        let mut out = Vec::new();
        gather(&[2, 0, 1], &data, &mut out);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn gather_panics_on_corrupted_permutation() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let data = [1u8, 2];
        let mut out = Vec::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gather(&[0, 77], &data, &mut out)));
        assert!(r.is_err());
    }
}
