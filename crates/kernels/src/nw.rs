//! NW — Needleman-Wunsch global sequence alignment (paper §3.2).
//!
//! "Needleman-Wunsch is a dynamic programming algorithm developed to compare
//! biological sequences. It is representative of dynamic programming
//! techniques that construct a new output using previous results."
//!
//! The port fills the `(n+1)²` integer score matrix in anti-diagonal
//! wavefronts of `b × b` blocks (Rodinia's blocked OpenMP schedule): blocks
//! on one anti-diagonal are independent, so each is computed into a private
//! tile in parallel and written back deterministically. A final traceback
//! step walks the alignment path from `(n, n)`; because the DP recurrence is
//! exact over integers, a fault-free traceback always finds a consistent
//! predecessor — corrupted scores break that consistency, and large
//! corruptions derail the walk entirely (a crash DUE), reproducing the
//! paper's observation that "NW will most likely crash when the value is
//! largely different from the expected one" while the *Zero* model is almost
//! always masked (the uncomputed region of the DP matrix is zero).
//!
//! NW is the paper's only integer benchmark.

use crate::par::par_for_each;
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use rand::Rng;

/// NW sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NwParams {
    /// Sequence length; the DP matrix is (n+1)². Must be a multiple of `block`.
    pub n: usize,
    pub block: usize,
    pub workers: usize,
    pub seed: u64,
}

impl NwParams {
    pub fn test() -> Self {
        NwParams { n: 48, block: 8, workers: 1, seed: 0x0811 }
    }

    pub fn small() -> Self {
        NwParams { n: 128, block: 16, workers: 1, seed: 0x0811 }
    }

    pub fn paper() -> Self {
        NwParams { n: 256, block: 16, workers: 1, seed: 0x0811 }
    }

    fn bb(&self) -> usize {
        self.n / self.block
    }
}

/// Gap penalty (Rodinia's default).
const PENALTY: i32 = 10;
/// Alphabet size of the substitution matrix (BLOSUM-like).
const ALPHABET: usize = 24;
/// Traceback tolerance: small inconsistencies are followed best-effort;
/// beyond this many the walk is declared derailed (crash).
const TRACEBACK_SLACK: usize = 64;

/// Per-logical-thread control block (one thread per block column).
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    diag_cur: u64,
    b_local: u64,
    n_local: u64,
    stride_local: u64,
    /// Inner-loop scratch, rewritten before every use (dead at interrupts).
    ti_scratch: u64,
    tj_scratch: u64,
    gi_scratch: u64,
    diag_val: i64,
    up_val: i64,
    left_val: i64,
}

/// The NW fault target.
#[derive(Clone)]
pub struct Nw {
    p: NwParams,
    /// Substitution scores for every DP cell (Rodinia's `reference`).
    refm: Vec<i32>,
    /// The DP score matrix (`input_itemsets`).
    score: Vec<i32>,
    /// Gap penalty (injectable constant).
    penalty: i32,
    seq1: Vec<i32>,
    seq2: Vec<i32>,
    /// Alignment path recorded by the traceback: `(i, j, score)` triples,
    /// (-1, -1, 0)-padded to its maximum length. This is the program output
    /// (Rodinia's NW writes the traceback path to its result file), which is
    /// why most single-cell matrix corruptions — off the path — are masked,
    /// and why the Zero model "does not cause any errors" (paper §6, NW).
    path: Vec<i32>,
    /// Base offsets of the two big arrays — the C code's pointer variables,
    /// which CAROL-FI injects into like any other variable ("Such variables
    /// include pointers"). Zero in a fault-free run; a corrupted high bit
    /// sends every access out of bounds (segfault ⇒ DUE), a corrupted low
    /// bit shears reads (SDC), and the Zero model restores the valid base.
    ptr_score: u64,
    ptr_ref: u64,
    ctrl: Vec<Ctrl>,
    done: usize,
    total: usize,
    /// Pristine pre-run snapshot taken at the end of `new()` (its own
    /// `pristine` is `None`); `reset()` restores from it in place.
    pristine: Option<Box<Nw>>,
}

/// Deterministic BLOSUM-like substitution matrix: positive diagonal,
/// mostly non-positive off-diagonal, symmetric, with zeros present.
fn substitution_matrix(seed: u64) -> Vec<i32> {
    let mut rng = carolfi::rng::fork(seed, 101);
    let mut m = vec![0i32; ALPHABET * ALPHABET];
    for i in 0..ALPHABET {
        for j in 0..=i {
            let v = if i == j { rng.gen_range(4..=11) } else { rng.gen_range(-4..=1) };
            m[i * ALPHABET + j] = v;
            m[j * ALPHABET + i] = v;
        }
    }
    m
}

impl Nw {
    pub fn new(p: NwParams) -> Self {
        assert!(p.n.is_multiple_of(p.block), "n must be a multiple of block");
        let np1 = p.n + 1;
        let mut rng = carolfi::rng::fork(p.seed, 0);
        let seq1: Vec<i32> = (0..p.n).map(|_| rng.gen_range(0..ALPHABET as i32)).collect();
        let seq2: Vec<i32> = (0..p.n).map(|_| rng.gen_range(0..ALPHABET as i32)).collect();
        let sub = substitution_matrix(p.seed);
        let mut refm = vec![0i32; np1 * np1];
        for i in 1..np1 {
            for j in 1..np1 {
                refm[i * np1 + j] = sub[seq1[i - 1] as usize * ALPHABET + seq2[j - 1] as usize];
            }
        }
        let mut score = vec![0i32; np1 * np1];
        for i in 1..np1 {
            score[i * np1] = -(i as i32) * PENALTY;
            score[i] = -(i as i32) * PENALTY;
        }
        let bb = p.bb();
        let ctrl = (0..bb)
            .map(|_| Ctrl {
                diag_cur: 0,
                b_local: p.block as u64,
                n_local: np1 as u64,
                stride_local: bb as u64,
                ti_scratch: 0,
                tj_scratch: 0,
                gi_scratch: 0,
                diag_val: 0,
                up_val: 0,
                left_val: 0,
            })
            .collect();
        // 2·bb − 1 wavefront steps + 1 traceback step.
        let mut nw = Nw { p, refm, score, penalty: PENALTY, seq1, seq2, path: vec![-1; (2 * p.n + 1) * 3], ptr_score: 0, ptr_ref: 0, ctrl, done: 0, total: 2 * bb - 1 + 1, pristine: None };
        nw.pristine = Some(Box::new(nw.clone()));
        nw
    }

    /// Sequential reference DP fill for correctness tests.
    pub fn reference(p: NwParams) -> Vec<i32> {
        let nw = Nw::new(p);
        let np1 = p.n + 1;
        let mut s = nw.score.clone();
        for i in 1..np1 {
            for j in 1..np1 {
                let diag = s[(i - 1) * np1 + (j - 1)] + nw.refm[i * np1 + j];
                let up = s[(i - 1) * np1 + j] - PENALTY;
                let left = s[i * np1 + (j - 1)] - PENALTY;
                s[i * np1 + j] = diag.max(up).max(left);
            }
        }
        s
    }

    /// Computes one block into a private tile. `ib`/`jb` are block coords.
    fn compute_block(&self, ctl: &mut Ctrl, ib: usize, jb: usize) -> Vec<i32> {
        let b = ctl.b_local as usize;
        let np1 = ctl.n_local as usize;
        let pen = self.penalty;
        carolfi::fuel::guard_alloc((b + 1).saturating_mul(b + 1));
        let mut fuel = Fuel::with_factor(((b + 1) * (b + 1)) as u64, 8.0);
        // Tile with a halo row/col loaded from the global matrix.
        let mut tile = vec![0i32; (b + 1) * (b + 1)];
        let r0 = ib * b; // global row of tile row 0 (the halo)
        let c0 = jb * b;
        let sbase = self.ptr_score as usize;
        let rbase = self.ptr_ref as usize;
        for (tj, t) in tile.iter_mut().enumerate().take(b + 1) {
            *t = self.score[sbase + r0 * np1 + c0 + tj];
        }
        for ti in 1..=b {
            tile[ti * (b + 1)] = self.score[sbase + (r0 + ti) * np1 + c0];
        }
        for ti in 1..=b {
            for tj in 1..=b {
                fuel.burn(1);
                let gi = r0 + ti;
                let gj = c0 + tj;
                let diag = tile[(ti - 1) * (b + 1) + (tj - 1)] + self.refm[rbase + gi * np1 + gj];
                let up = tile[(ti - 1) * (b + 1) + tj] - pen;
                let left = tile[ti * (b + 1) + (tj - 1)] - pen;
                ctl.ti_scratch = ti as u64;
                ctl.tj_scratch = tj as u64;
                ctl.gi_scratch = gi as u64;
                ctl.diag_val = diag as i64;
                ctl.up_val = up as i64;
                ctl.left_val = left as i64;
                tile[ti * (b + 1) + tj] = diag.max(up).max(left);
            }
        }
        tile
    }

    /// Traceback from (n, n): follows exact DP consistency, tolerating up to
    /// [`TRACEBACK_SLACK`] inconsistent cells before declaring a crash, and
    /// records the alignment path — the program output.
    fn traceback(&mut self) {
        let np1 = self.p.n + 1;
        let (mut i, mut j) = (self.p.n as i64, self.p.n as i64);
        let mut inconsistent = 0usize;
        let mut fuel = Fuel::with_factor((2 * np1) as u64, 4.0);
        let mut out = 0usize;
        while i > 0 || j > 0 {
            fuel.burn(1);
            if out + 3 <= self.path.len() {
                self.path[out] = i as i32;
                self.path[out + 1] = j as i32;
                self.path[out + 2] = self.score[self.ptr_score as usize + i as usize * np1 + j as usize];
                out += 3;
            }
            if i == 0 {
                j -= 1;
                continue;
            }
            if j == 0 {
                i -= 1;
                continue;
            }
            let (iu, ju) = (i as usize, j as usize);
            let sbase = self.ptr_score as usize;
            let rbase = self.ptr_ref as usize;
            let here = self.score[sbase + iu * np1 + ju];
            let diag = self.score[sbase + (iu - 1) * np1 + (ju - 1)] + self.refm[rbase + iu * np1 + ju];
            let up = self.score[sbase + (iu - 1) * np1 + ju] - self.penalty;
            let left = self.score[sbase + iu * np1 + (ju - 1)] - self.penalty;
            if here == diag {
                i -= 1;
                j -= 1;
            } else if here == up {
                i -= 1;
            } else if here == left {
                j -= 1;
            } else {
                // Corrupted DP state: follow the best predecessor, but a
                // badly corrupted matrix derails the walk entirely.
                inconsistent += 1;
                if inconsistent > TRACEBACK_SLACK {
                    panic!("nw traceback derailed after {inconsistent} inconsistent cells");
                }
                if diag >= up && diag >= left {
                    i -= 1;
                    j -= 1;
                } else if up >= left {
                    i -= 1;
                } else {
                    j -= 1;
                }
            }
        }
    }
}

impl FaultTarget for Nw {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn total_steps(&self) -> usize {
        self.total
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Monomorphic run-ahead loop (ZOFI-style full-speed phase): one
        // decrement-and-branch plus a direct, inlinable step call per
        // step — no virtual dispatch through `dyn FaultTarget`.
        while self.done < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn step(&mut self) -> StepOutcome {
        let bb = self.p.bb();
        if self.done < 2 * bb - 1 {
            // Wavefront fill: blocks (ib, jb) with ib + jb == diag_cur,
            // distributed over logical threads by block row.
            struct Task {
                ib: usize,
                jb: usize,
                tile: Vec<i32>,
                thread: usize,
            }
            let mut tasks: Vec<Task> = Vec::new();
            let mut listing_fuel = Fuel::with_factor((4 * bb * bb) as u64, 4.0);
            for (t, ctl) in self.ctrl.iter().enumerate() {
                let diag = ctl.diag_cur as usize;
                let stride = (ctl.stride_local as usize).max(1);
                let mut ib = t;
                while ib < diag.saturating_add(1) {
                    listing_fuel.burn(1);
                    let jb = diag - ib;
                    // Corrupted diag/stride can propose out-of-range blocks;
                    // the tile computation's indexing panics on real OOB.
                    if ib < bb && jb < bb {
                        tasks.push(Task { ib, jb, tile: Vec::new(), thread: t });
                    }
                    ib += stride;
                }
            }
            // Each task owns a copy of its thread's control block; the
            // scratch updates are merged back for the owning thread's last
            // task (deterministic: tasks of one thread run in order within
            // one chunk only when workers=1; the scratch is dead state, so
            // per-run variation in which task's copy wins would still be
            // fault-free-identical — we keep it deterministic by merging in
            // task order).
            let this = &*self;
            let mut ctls: Vec<Ctrl> = tasks.iter().map(|t| this.ctrl[t.thread]).collect();
            {
                struct Job<'a> {
                    task: &'a mut Task,
                    ctl: &'a mut Ctrl,
                }
                let mut jobs: Vec<Job<'_>> = tasks.iter_mut().zip(ctls.iter_mut()).map(|(task, ctl)| Job { task, ctl }).collect();
                par_for_each(&mut jobs, self.p.workers, |_, job| {
                    job.task.tile = this.compute_block(job.ctl, job.task.ib, job.task.jb);
                });
            }
            for (task, ctl) in tasks.iter().zip(ctls) {
                self.ctrl[task.thread] = ctl;
            }
            // Deterministic write-back of tile interiors.
            let np1 = self.p.n + 1;
            let b = self.p.block;
            for task in &tasks {
                for ti in 1..=b {
                    for tj in 1..=b {
                        self.score[(task.ib * b + ti) * np1 + task.jb * b + tj] = task.tile[ti * (b + 1) + tj];
                    }
                }
            }
            for ctl in &mut self.ctrl {
                ctl.diag_cur += 1;
            }
        } else {
            self.traceback();
        }
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(6 + 4 * self.ctrl.len());
        vars.push(Variable::from_slice(VarInfo::global("itemsets", VarClass::Matrix, file!(), 1), &mut self.score));
        vars.push(Variable::from_slice(VarInfo::global("alignment_path", VarClass::Matrix, file!(), 1), &mut self.path));
        vars.push(Variable::from_slice(VarInfo::global("reference", VarClass::InputArray, file!(), 2), &mut self.refm));
        vars.push(Variable::from_scalar(VarInfo::global("penalty", VarClass::Constant, file!(), 3), &mut self.penalty));
        vars.push(Variable::from_slice(VarInfo::global("seq1", VarClass::InputArray, file!(), 4), &mut self.seq1));
        vars.push(Variable::from_slice(VarInfo::global("seq2", VarClass::InputArray, file!(), 5), &mut self.seq2));
        vars.push(Variable::from_scalar(VarInfo::global("itemsets_ptr", VarClass::Pointer, file!(), 6), &mut self.ptr_score));
        vars.push(Variable::from_scalar(VarInfo::global("reference_ptr", VarClass::Pointer, file!(), 7), &mut self.ptr_ref));
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "nw_wavefront";
            vars.push(Variable::from_scalar(VarInfo::local("diag_cur", VarClass::ControlVariable, f, t16, file!(), 10), &mut ctl.diag_cur));
            vars.push(Variable::from_scalar(VarInfo::local("b_local", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.b_local));
            vars.push(Variable::from_scalar(VarInfo::local("n_local", VarClass::ControlVariable, f, t16, file!(), 12), &mut ctl.n_local));
            vars.push(Variable::from_scalar(VarInfo::local("stride_local", VarClass::ControlVariable, f, t16, file!(), 13), &mut ctl.stride_local));
            vars.push(Variable::from_scalar(VarInfo::local("ti", VarClass::ControlVariable, f, t16, file!(), 14), &mut ctl.ti_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("tj", VarClass::ControlVariable, f, t16, file!(), 15), &mut ctl.tj_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("gi", VarClass::ControlVariable, f, t16, file!(), 16), &mut ctl.gi_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("diag_val", VarClass::Buffer, f, t16, file!(), 17), &mut ctl.diag_val));
            vars.push(Variable::from_scalar(VarInfo::local("up_val", VarClass::Buffer, f, t16, file!(), 18), &mut ctl.up_val));
            vars.push(Variable::from_scalar(VarInfo::local("left_val", VarClass::Buffer, f, t16, file!(), 19), &mut ctl.left_val));
        }
        vars
    }

    fn output(&self) -> Output {
        Output::I32Grid { dims: [self.path.len() / 3, 3, 1], data: self.path.clone() }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        self.refm.copy_from_slice(&pristine.refm);
        self.score.copy_from_slice(&pristine.score);
        self.penalty = pristine.penalty;
        self.seq1.copy_from_slice(&pristine.seq1);
        self.seq2.copy_from_slice(&pristine.seq2);
        self.path.copy_from_slice(&pristine.path);
        self.ptr_score = 0;
        self.ptr_ref = 0;
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.done = 0;
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut nw: Nw) -> Output {
        while nw.step() == StepOutcome::Continue {}
        nw.output()
    }

    #[test]
    fn matches_sequential_reference_exactly() {
        let p = NwParams::test();
        let reference = Nw::reference(p);
        let mut nw = Nw::new(p);
        while nw.step() == StepOutcome::Continue {}
        assert_eq!(nw.score, reference, "integer DP must agree bit-for-bit");
    }

    #[test]
    fn traceback_path_is_monotone_and_anchored() {
        let p = NwParams::test();
        let mut nw = Nw::new(p);
        while nw.step() == StepOutcome::Continue {}
        let Output::I32Grid { data, .. } = nw.output() else { panic!() };
        assert_eq!(data[0], p.n as i32);
        assert_eq!(data[1], p.n as i32);
        let mut prev = (i32::MAX, i32::MAX);
        for step in data.chunks(3) {
            if step[0] < 0 {
                break; // padding
            }
            assert!(step[0] <= prev.0 && step[1] <= prev.1, "path must walk up-left");
            prev = (step[0], step[1]);
        }
    }

    #[test]
    fn off_path_corruption_is_masked() {
        let p = NwParams::test();
        let golden = run_to_done(Nw::new(p));
        let mut nw = Nw::new(p);
        while nw.done < nw.total - 1 {
            nw.step();
        }
        let np1 = p.n + 1;
        // A corner far from the main diagonal path: flip a low bit there.
        nw.score[2 * np1 + (np1 - 3)] ^= 1;
        nw.step();
        assert!(nw.output().matches(&golden), "an off-path low-bit flip must not change the alignment");
    }

    #[test]
    fn deterministic_across_workers() {
        let p = NwParams::test();
        let a = run_to_done(Nw::new(p));
        let b = run_to_done(Nw::new(NwParams { workers: 3, ..p }));
        assert!(a.matches(&b));
    }

    #[test]
    fn fault_free_traceback_never_panics() {
        run_to_done(Nw::new(NwParams::test()));
    }

    #[test]
    fn uncomputed_region_is_zero_mid_run() {
        // The basis for the Zero model's masking on NW.
        let p = NwParams::test();
        let mut nw = Nw::new(p);
        for _ in 0..3 {
            nw.step();
        }
        let np1 = p.n + 1;
        let zeros = nw.score.iter().skip(np1).filter(|&&v| v == 0).count();
        assert!(zeros > np1 * np1 / 4, "expected a large uncomputed zero region, found {zeros}");
    }

    #[test]
    fn corrupted_pointer_high_bit_crashes() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = NwParams::test();
        let mut nw = Nw::new(p);
        nw.step();
        nw.ptr_score = 1 << 40; // segfault-equivalent
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while nw.step() == StepOutcome::Continue {}
        }));
        assert!(r.is_err(), "wild pointer must crash");
    }

    #[test]
    fn corrupted_pointer_low_bits_shear_reads_into_sdc() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = NwParams::test();
        let golden = run_to_done(Nw::new(p));
        let mut nw = Nw::new(p);
        nw.step();
        nw.ptr_score = 2; // shifted halo loads
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while nw.step() == StepOutcome::Continue {}
            nw.output()
        }));
        if let Ok(out) = r {
            assert!(!out.matches(&golden), "sheared reads must corrupt the output");
        }
    }

    #[test]
    fn zeroed_pointer_is_the_valid_base() {
        let p = NwParams::test();
        let golden = run_to_done(Nw::new(p));
        let mut nw = Nw::new(p);
        nw.step();
        nw.ptr_score = 0; // the Zero fault model's result — a valid pointer
        while nw.step() == StepOutcome::Continue {}
        assert!(nw.output().matches(&golden));
    }

    #[test]
    fn single_low_bit_flip_is_sdc_not_crash() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = NwParams::test();
        let golden = run_to_done(Nw::new(p));
        let mut nw = Nw::new(p);
        while nw.done < nw.total - 1 {
            nw.step();
        }
        let np1 = p.n + 1;
        nw.score[p.n * np1 + p.n] ^= 1; // the traceback anchor is always on the path
        nw.step(); // traceback tolerates a single inconsistency
        assert!(!nw.output().matches(&golden));
    }

    #[test]
    fn score_zeros_are_common_in_reference_inputs() {
        let p = NwParams::test();
        let nw = Nw::new(p);
        let zeros = nw.refm.iter().filter(|&&v| v == 0).count();
        assert!(zeros > 0, "substitution matrix must contain zeros for Zero-model masking");
    }
}
