//! LavaMD — N-body particle potentials in a 3-D box decomposition
//! (paper §3.2).
//!
//! "LavaMD implements an N-Body algorithm. The algorithm analyzes particles
//! in a 3D space and calculates the mutual forces between the particles
//! within a predefined distance range."
//!
//! The port keeps Rodinia's structure: the domain is an `nb × nb × nb` grid
//! of boxes, each holding `par_per_box` particles with positions (`rv`, the
//! paper's *distance* array) and charges (`qv`). For every particle the
//! kernel accumulates an exponentially decaying pair potential over the
//! particles of the home box and its ≤26 face/edge/corner neighbours within
//! a cutoff. The `rv`/`qv` input arrays dominate the memory image — "up to
//! five orders of magnitude larger than the other data structures" — and the
//! `exp()` in the kernel "will exacerbate any error" (paper §6, LavaMD).
//!
//! Each logical thread owns one box; a cooperative step processes a slab of
//! boxes, so force output for a box is written exactly once, at the thread's
//! (injectable) fire step. LavaMD is the paper's only benchmark with a
//! genuinely 3-D output, hence the only one that can show the *cubic*
//! spatial error pattern.

use crate::par::par_for_each;
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use rand::Rng;

/// LavaMD sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct LavamdParams {
    /// Boxes per dimension (total boxes = nb³ = logical threads).
    pub nb: usize,
    /// Particles per box.
    pub par_per_box: usize,
    /// Cooperative steps a run is divided into.
    pub steps: usize,
    pub workers: usize,
    pub seed: u64,
}

impl LavamdParams {
    pub fn test() -> Self {
        LavamdParams { nb: 3, par_per_box: 6, steps: 9, workers: 1, seed: 0x1a7a }
    }

    pub fn small() -> Self {
        LavamdParams { nb: 4, par_per_box: 8, steps: 16, workers: 1, seed: 0x1a7a }
    }

    pub fn paper() -> Self {
        LavamdParams { nb: 5, par_per_box: 12, steps: 25, workers: 1, seed: 0x1a7a }
    }

    pub fn boxes(&self) -> usize {
        self.nb * self.nb * self.nb
    }
}

/// Interaction strength (Rodinia's `alpha`-derived constant).
const A2_DEFAULT: f32 = 2.0;
/// Pair cutoff distance squared, in box units.
const CUT2_DEFAULT: f32 = 1.8;

/// Per-logical-thread (= per-box) control block.
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    /// Which box this thread computes (normally its own index).
    box_id: u64,
    /// Step at which this thread fires.
    fire_step: u64,
    /// Thread-local copies of the geometry.
    par_local: u64,
    nb_local: u64,
    /// Inner-loop scratch: rewritten before every use while the thread is
    /// firing and dead the rest of the run. Real interrupted frames are full
    /// of such locals, which is why most of the paper's LavaMD injections
    /// are masked.
    j_scratch: u64,
    nbox_scratch: u64,
    d2_scratch: f32,
    w_scratch: f32,
    dx_scratch: f32,
    dy_scratch: f32,
    dz_scratch: f32,
    qj_scratch: f32,
    v_copy: f32,
    fx_copy: f32,
    fy_copy: f32,
    fz_copy: f32,
}

/// The LavaMD fault target.
#[derive(Clone)]
pub struct Lavamd {
    p: LavamdParams,
    /// Particle positions: 4 floats per particle (x, y, z, pad).
    rv: Vec<f32>,
    /// Particle charges: 1 float per particle.
    qv: Vec<f32>,
    /// Output potentials/forces: 4 floats per particle (v, fx, fy, fz).
    fv: Vec<f32>,
    /// Interaction constant (injectable).
    a2: f32,
    /// Cutoff distance squared (injectable).
    cut2: f32,
    ctrl: Vec<Ctrl>,
    /// Pointer base for the particle arrays (injectable; segfault path).
    ptr_rv: u64,
    /// Raw setup parameters, dead after construction (masked targets).
    raw: [f32; 4],
    done: usize,
    /// Pristine pre-run snapshot taken at the end of `new()` (its own
    /// `pristine` is `None`); `reset()` restores from it in place.
    pristine: Option<Box<Lavamd>>,
}

impl Lavamd {
    pub fn new(p: LavamdParams) -> Self {
        assert!(p.nb > 0 && p.par_per_box > 0 && p.steps > 0);
        let boxes = p.boxes();
        let n = boxes * p.par_per_box;
        let mut rng = carolfi::rng::fork(p.seed, 0);
        let mut rv = vec![0.0f32; n * 4];
        for b in 0..boxes {
            let bz = b % p.nb;
            let by = (b / p.nb) % p.nb;
            let bx = b / (p.nb * p.nb);
            for q in 0..p.par_per_box {
                let i = (b * p.par_per_box + q) * 4;
                rv[i] = bx as f32 + rng.gen::<f32>();
                rv[i + 1] = by as f32 + rng.gen::<f32>();
                rv[i + 2] = bz as f32 + rng.gen::<f32>();
                rv[i + 3] = 0.0;
            }
        }
        let qv: Vec<f32> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let ctrl = (0..boxes)
            .map(|b| Ctrl {
                box_id: b as u64,
                fire_step: (b * p.steps / boxes) as u64,
                par_local: p.par_per_box as u64,
                nb_local: p.nb as u64,
                j_scratch: 0,
                nbox_scratch: 0,
                d2_scratch: 0.0,
                w_scratch: 0.0,
                dx_scratch: 0.0,
                dy_scratch: 0.0,
                dz_scratch: 0.0,
                qj_scratch: 0.0,
                v_copy: 0.0,
                fx_copy: 0.0,
                fy_copy: 0.0,
                fz_copy: 0.0,
            })
            .collect();
        let mut l = Lavamd { p, rv, qv, fv: vec![0.0; n * 4], a2: A2_DEFAULT, cut2: CUT2_DEFAULT, ctrl, ptr_rv: 0, raw: [A2_DEFAULT.sqrt(), CUT2_DEFAULT.sqrt(), p.nb as f32, p.par_per_box as f32], done: 0, pristine: None };
        l.pristine = Some(Box::new(l.clone()));
        l
    }

    /// Sequential reference: potentials for every particle, brute force over
    /// all particle pairs within the cutoff (no box decomposition at all).
    pub fn reference(p: LavamdParams) -> Vec<f32> {
        let l = Lavamd::new(p);
        let n = p.boxes() * p.par_per_box;
        let mut fv = vec![0.0f32; n * 4];
        for i in 0..n {
            let (xi, yi, zi) = (l.rv[i * 4], l.rv[i * 4 + 1], l.rv[i * 4 + 2]);
            for j in 0..n {
                let (xj, yj, zj) = (l.rv[j * 4], l.rv[j * 4 + 1], l.rv[j * 4 + 2]);
                let (dx, dy, dz) = (xi - xj, yi - yj, zi - zj);
                let d2 = dx * dx + dy * dy + dz * dz;
                if d2 > l.cut2 {
                    continue;
                }
                // Reference sums over *boxes within one step* of the home
                // box only, like the kernel; particles further than the
                // cutoff are excluded above, and the box grid guarantees
                // cutoff ≤ box diagonal, so the pair sets agree when the
                // pair is within a neighbouring box.
                let (bi, bj) = (box_of(&l, i), box_of(&l, j));
                if !boxes_adjacent(p.nb, bi, bj) {
                    continue;
                }
                let w = l.qv[j] * (-l.a2 * d2).exp();
                fv[i * 4] += w;
                fv[i * 4 + 1] += w * dx;
                fv[i * 4 + 2] += w * dy;
                fv[i * 4 + 3] += w * dz;
            }
        }
        fv
    }
}

fn box_of(l: &Lavamd, particle: usize) -> (usize, usize, usize) {
    let b = particle / l.p.par_per_box;
    (b / (l.p.nb * l.p.nb), (b / l.p.nb) % l.p.nb, b % l.p.nb)
}

fn boxes_adjacent(_nb: usize, a: (usize, usize, usize), b: (usize, usize, usize)) -> bool {
    a.0.abs_diff(b.0) <= 1 && a.1.abs_diff(b.1) <= 1 && a.2.abs_diff(b.2) <= 1
}

/// One thread's box computation. Reads are driven by the injectable control
/// block and the shared input arrays; writes land in the thread's physical
/// `fv` slot.
#[allow(clippy::too_many_arguments)]
fn compute_box(ctl: &mut Ctrl, fv_slot: &mut [f32], rv: &[f32], qv: &[f32], a2: f32, cut2: f32, step: u64, ptrs: (usize, usize)) {
    let (pr, pq) = ptrs;
    if ctl.fire_step != step {
        return;
    }
    let nb = ctl.nb_local as usize;
    let par = ctl.par_local as usize;
    let home = ctl.box_id as usize;
    let hz = home % nb.max(1);
    let hy = (home / nb.max(1)) % nb.max(1);
    let hx = home / (nb.max(1) * nb.max(1));
    let mut fuel = Fuel::with_factor(27 * (par as u64 + 1) * (par as u64 + 1), 8.0);
    for q in 0..par.min(fv_slot.len() / 4) {
        let out = &mut fv_slot[q * 4..q * 4 + 4];
        let i = home * par + q;
        let (xi, yi, zi) = (rv[pr + i * 4], rv[pr + i * 4 + 1], rv[pr + i * 4 + 2]);
        let (mut v, mut fx, mut fy, mut fz) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nx = hx as i64 + dx;
                    let ny = hy as i64 + dy;
                    let nz = hz as i64 + dz;
                    if nx < 0 || ny < 0 || nz < 0 || nx >= nb as i64 || ny >= nb as i64 || nz >= nb as i64 {
                        continue;
                    }
                    let nbox = (nx as usize * nb + ny as usize) * nb + nz as usize;
                    ctl.nbox_scratch = nbox as u64;
                    for pj in 0..par {
                        fuel.burn(1);
                        let j = nbox * par + pj;
                        ctl.j_scratch = j as u64;
                        let (xj, yj, zj) = (rv[pr + j * 4], rv[pr + j * 4 + 1], rv[pr + j * 4 + 2]);
                        let (ddx, ddy, ddz) = (xi - xj, yi - yj, zi - zj);
                        let d2 = ddx * ddx + ddy * ddy + ddz * ddz;
                        if d2 > cut2 {
                            continue;
                        }
                        let w = qv[pq + j] * (-a2 * d2).exp();
                        ctl.d2_scratch = d2;
                        ctl.w_scratch = w;
                        ctl.dx_scratch = ddx;
                        ctl.dy_scratch = ddy;
                        ctl.dz_scratch = ddz;
                        ctl.qj_scratch = qv[pq + j];
                        v += w;
                        fx += w * ddx;
                        fy += w * ddy;
                        fz += w * ddz;
                    }
                }
            }
        }
        ctl.v_copy = v;
        ctl.fx_copy = fx;
        ctl.fy_copy = fy;
        ctl.fz_copy = fz;
        out[0] = v;
        out[1] = fx;
        out[2] = fy;
        out[3] = fz;
    }
}

impl FaultTarget for Lavamd {
    fn name(&self) -> &'static str {
        "lavamd"
    }

    fn total_steps(&self) -> usize {
        self.p.steps
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Monomorphic run-ahead loop (ZOFI-style full-speed phase): one
        // decrement-and-branch plus a direct, inlinable step call per
        // step — no virtual dispatch through `dyn FaultTarget`.
        while self.done < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn step(&mut self) -> StepOutcome {
        struct Item<'a> {
            ctl: &'a mut Ctrl,
            slot: &'a mut [f32],
        }
        let slot_len = self.p.par_per_box * 4;
        let mut items: Vec<Item<'_>> = Vec::with_capacity(self.ctrl.len());
        {
            let mut rest: &mut [f32] = &mut self.fv;
            for ctl in self.ctrl.iter_mut() {
                let (slot, tail) = rest.split_at_mut(slot_len);
                rest = tail;
                items.push(Item { ctl, slot });
            }
        }
        let (rv, qv, a2, cut2, step) = (&self.rv, &self.qv, self.a2, self.cut2, self.done as u64);
        let ptrs = (self.ptr_rv as usize, self.ptr_rv as usize);
        par_for_each(&mut items, self.p.workers, |_, item| {
            compute_box(item.ctl, item.slot, rv, qv, a2, cut2, step, ptrs);
        });
        self.done += 1;
        if self.done >= self.p.steps {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(5 + 4 * self.ctrl.len());
        vars.push(Variable::from_slice(VarInfo::global("rv_distance", VarClass::InputArray, file!(), 1), &mut self.rv));
        vars.push(Variable::from_slice(VarInfo::global("qv_charge", VarClass::InputArray, file!(), 2), &mut self.qv));
        vars.push(Variable::from_slice(VarInfo::global("fv_forces", VarClass::Matrix, file!(), 3), &mut self.fv));
        vars.push(Variable::from_scalar(VarInfo::global("alpha2", VarClass::Constant, file!(), 4), &mut self.a2));
        vars.push(Variable::from_scalar(VarInfo::global("cutoff2", VarClass::Constant, file!(), 5), &mut self.cut2));
        vars.push(Variable::from_scalar(VarInfo::global("rv_ptr", VarClass::Pointer, file!(), 6), &mut self.ptr_rv));
        {
            let [alpha, cutoff, boxes1d, par_raw] = &mut self.raw;
            vars.push(Variable::from_scalar(VarInfo::global("alpha", VarClass::Constant, file!(), 7), alpha));
            vars.push(Variable::from_scalar(VarInfo::global("cutoff", VarClass::Constant, file!(), 7), cutoff));
            vars.push(Variable::from_scalar(VarInfo::global("boxes1d", VarClass::Constant, file!(), 7), boxes1d));
            vars.push(Variable::from_scalar(VarInfo::global("par_raw", VarClass::Constant, file!(), 7), par_raw));
        }
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "lavamd_kernel";
            vars.push(Variable::from_scalar(VarInfo::local("box_id", VarClass::ControlVariable, f, t16, file!(), 10), &mut ctl.box_id));
            vars.push(Variable::from_scalar(VarInfo::local("fire_step", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.fire_step));
            vars.push(Variable::from_scalar(VarInfo::local("par_local", VarClass::ControlVariable, f, t16, file!(), 12), &mut ctl.par_local));
            vars.push(Variable::from_scalar(VarInfo::local("nb_local", VarClass::ControlVariable, f, t16, file!(), 13), &mut ctl.nb_local));
            vars.push(Variable::from_scalar(VarInfo::local("j", VarClass::ControlVariable, f, t16, file!(), 14), &mut ctl.j_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("nbox", VarClass::ControlVariable, f, t16, file!(), 15), &mut ctl.nbox_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("d2", VarClass::Buffer, f, t16, file!(), 16), &mut ctl.d2_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("w", VarClass::Buffer, f, t16, file!(), 17), &mut ctl.w_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("dx", VarClass::Buffer, f, t16, file!(), 18), &mut ctl.dx_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("dy", VarClass::Buffer, f, t16, file!(), 19), &mut ctl.dy_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("dz", VarClass::Buffer, f, t16, file!(), 20), &mut ctl.dz_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("qj", VarClass::Buffer, f, t16, file!(), 21), &mut ctl.qj_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("v_acc", VarClass::Buffer, f, t16, file!(), 22), &mut ctl.v_copy));
            vars.push(Variable::from_scalar(VarInfo::local("fx_acc", VarClass::Buffer, f, t16, file!(), 23), &mut ctl.fx_copy));
            vars.push(Variable::from_scalar(VarInfo::local("fy_acc", VarClass::Buffer, f, t16, file!(), 24), &mut ctl.fy_copy));
            vars.push(Variable::from_scalar(VarInfo::local("fz_acc", VarClass::Buffer, f, t16, file!(), 25), &mut ctl.fz_copy));
        }
        vars
    }

    fn output(&self) -> Output {
        // 3-D layout: [box_x, box_y, box_z × particles × 4 components].
        // Forces are compared through the text result file (6 significant
        // digits), like HotSpot.
        let nb = self.p.nb;
        let data = self.fv.iter().map(|&v| crate::quantize::sig6_f32(v)).collect();
        Output::F32Grid { dims: [nb, nb, nb * self.p.par_per_box * 4], data }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        self.rv.copy_from_slice(&pristine.rv);
        self.qv.copy_from_slice(&pristine.qv);
        self.fv.copy_from_slice(&pristine.fv);
        self.a2 = pristine.a2;
        self.cut2 = pristine.cut2;
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.ptr_rv = 0;
        self.raw = pristine.raw;
        self.done = 0;
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut l: Lavamd) -> Output {
        while l.step() == StepOutcome::Continue {}
        l.output()
    }

    #[test]
    fn matches_brute_force_reference() {
        let p = LavamdParams::test();
        let reference = Lavamd::reference(p);
        let Output::F32Grid { data, .. } = run_to_done(Lavamd::new(p)) else { panic!() };
        for (i, (&got, &exp)) in data.iter().zip(&reference).enumerate() {
            assert!((got - exp).abs() <= 1e-4 * exp.abs().max(1.0), "component {i}: {got} vs {exp}");
        }
    }

    #[test]
    fn deterministic_across_workers() {
        let p = LavamdParams::test();
        let a = run_to_done(Lavamd::new(p));
        let b = run_to_done(Lavamd::new(LavamdParams { workers: 3, ..p }));
        assert!(a.matches(&b));
    }

    #[test]
    fn output_is_three_dimensional() {
        let out = run_to_done(Lavamd::new(LavamdParams::test()));
        assert_eq!(out.rank(), 3, "LavaMD must be able to exhibit cubic error patterns");
    }

    #[test]
    fn every_thread_fires_exactly_once() {
        let p = LavamdParams::test();
        let mut l = Lavamd::new(p);
        let mut fire_counts = vec![0usize; p.boxes()];
        for step in 0..p.steps as u64 {
            for (b, c) in l.ctrl.iter().enumerate() {
                if c.fire_step == step {
                    fire_counts[b] += 1;
                }
            }
            l.step();
        }
        assert!(fire_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn late_input_corruption_is_masked() {
        let p = LavamdParams::test();
        let golden = run_to_done(Lavamd::new(p));
        let mut l = Lavamd::new(p);
        while l.step() == StepOutcome::Continue {}
        // Everything computed; corrupt an input particle: no effect.
        l.rv[0] = 1.0e30;
        assert!(l.output().matches(&golden));
    }

    #[test]
    fn early_position_corruption_spreads_to_neighbor_boxes() {
        let p = LavamdParams::test();
        let golden = run_to_done(Lavamd::new(p));
        let mut l = Lavamd::new(p);
        // Move the first particle of the central box (1,1,1) before anything
        // runs: index (i*nb + j)*nb + k with i = j = k = 1.
        let center = (p.nb + 1) * p.nb + 1;
        l.rv[center * p.par_per_box * 4] += 0.4;
        while l.step() == StepOutcome::Continue {}
        let m = l.output().mismatches(&golden);
        let s = carolfi::record::DiffSummary::from_mismatches(&m, l.output().dims());
        assert!(s.distinct[0] >= 2 && s.distinct[1] >= 2 && s.distinct[2] >= 2, "expected a 3-D (cubic) spread, got {:?}", s.distinct);
    }

    #[test]
    fn corrupted_box_id_is_contained_or_crashes() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = LavamdParams::test();
        let golden = run_to_done(Lavamd::new(p));
        let mut l = Lavamd::new(p);
        l.ctrl[0].box_id = 7; // thread 0 computes box 7's particles
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while l.step() == StepOutcome::Continue {}
            l.output()
        }));
        match r {
            Err(_) => {}
            Ok(out) => {
                let m = out.mismatches(&golden);
                assert!(!m.is_empty());
                // Writes stay in thread 0's physical slot (box 0,0,0).
                for mm in &m {
                    assert_eq!((mm.coord[0], mm.coord[1]), (0, 0));
                    assert!(mm.coord[2] < p.par_per_box * 4);
                }
            }
        }
    }
}
