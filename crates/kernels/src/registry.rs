//! Benchmark registry: uniform construction of the six paper benchmarks.

use crate::clamr::{Clamr, ClamrParams};
use crate::dgemm::{Dgemm, DgemmParams};
use crate::hotspot::{Hotspot, HotspotParams};
use crate::lavamd::{Lavamd, LavamdParams};
use crate::lud::{Lud, LudParams};
use crate::nw::{Nw, NwParams};
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome};

/// The six benchmarks of paper §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Benchmark {
    Clamr,
    Dgemm,
    Hotspot,
    Lavamd,
    Lud,
    Nw,
}

impl Benchmark {
    /// All six, in the paper's presentation order.
    pub const ALL: [Benchmark; 6] =
        [Benchmark::Clamr, Benchmark::Dgemm, Benchmark::Hotspot, Benchmark::Lavamd, Benchmark::Lud, Benchmark::Nw];

    /// The five benchmarks used in the beam experiments ("NW was only tested
    /// with our fault injection", paper §3.2).
    pub const BEAM: [Benchmark; 5] =
        [Benchmark::Clamr, Benchmark::Dgemm, Benchmark::Hotspot, Benchmark::Lavamd, Benchmark::Lud];

    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Clamr => "clamr",
            Benchmark::Dgemm => "dgemm",
            Benchmark::Hotspot => "hotspot",
            Benchmark::Lavamd => "lavamd",
            Benchmark::Lud => "lud",
            Benchmark::Nw => "nw",
        }
    }

    /// Execution-time windows used in Fig. 6: "CLAMR is divided into nine
    /// time windows of equal length. DGEMM and HotSpot are split into five
    /// time windows while LUD and NW are divided into four parts each."
    /// (LavaMD is not shown in Fig. 6; it gets four windows.)
    pub fn n_windows(self) -> usize {
        match self {
            Benchmark::Clamr => 9,
            Benchmark::Dgemm | Benchmark::Hotspot => 5,
            Benchmark::Lavamd | Benchmark::Lud | Benchmark::Nw => 4,
        }
    }

    pub fn from_label(s: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.label() == s)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Tiny — unit/integration tests.
    Test,
    /// Small — fast campaigns on modest machines.
    Small,
    /// Paper-shaped — 228 logical threads where applicable.
    Paper,
}

/// Builds a fresh instance of `bench` at size `size`.
pub fn build(bench: Benchmark, size: SizeClass) -> Box<dyn FaultTarget> {
    match (bench, size) {
        (Benchmark::Clamr, SizeClass::Test) => Box::new(Clamr::new(ClamrParams::test())),
        (Benchmark::Clamr, SizeClass::Small) => Box::new(Clamr::new(ClamrParams::small())),
        (Benchmark::Clamr, SizeClass::Paper) => Box::new(Clamr::new(ClamrParams::paper())),
        (Benchmark::Dgemm, SizeClass::Test) => Box::new(Dgemm::new(DgemmParams::test())),
        (Benchmark::Dgemm, SizeClass::Small) => Box::new(Dgemm::new(DgemmParams::small())),
        (Benchmark::Dgemm, SizeClass::Paper) => Box::new(Dgemm::new(DgemmParams::paper())),
        (Benchmark::Hotspot, SizeClass::Test) => Box::new(Hotspot::new(HotspotParams::test())),
        (Benchmark::Hotspot, SizeClass::Small) => Box::new(Hotspot::new(HotspotParams::small())),
        (Benchmark::Hotspot, SizeClass::Paper) => Box::new(Hotspot::new(HotspotParams::paper())),
        (Benchmark::Lavamd, SizeClass::Test) => Box::new(Lavamd::new(LavamdParams::test())),
        (Benchmark::Lavamd, SizeClass::Small) => Box::new(Lavamd::new(LavamdParams::small())),
        (Benchmark::Lavamd, SizeClass::Paper) => Box::new(Lavamd::new(LavamdParams::paper())),
        (Benchmark::Lud, SizeClass::Test) => Box::new(Lud::new(LudParams::test())),
        (Benchmark::Lud, SizeClass::Small) => Box::new(Lud::new(LudParams::small())),
        (Benchmark::Lud, SizeClass::Paper) => Box::new(Lud::new(LudParams::paper())),
        (Benchmark::Nw, SizeClass::Test) => Box::new(Nw::new(NwParams::test())),
        (Benchmark::Nw, SizeClass::Small) => Box::new(Nw::new(NwParams::small())),
        (Benchmark::Nw, SizeClass::Paper) => Box::new(Nw::new(NwParams::paper())),
    }
}

/// Runs a fault-free instance to completion and returns the golden output.
pub fn golden(bench: Benchmark, size: SizeClass) -> Output {
    let mut t = build(bench, size);
    while t.step() == StepOutcome::Continue {}
    t.output()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_run_at_test_size() {
        for b in Benchmark::ALL {
            let g = golden(b, SizeClass::Test);
            assert!(!g.is_empty(), "{b}");
        }
    }

    #[test]
    fn goldens_are_reproducible() {
        for b in Benchmark::ALL {
            let a = golden(b, SizeClass::Test);
            let c = golden(b, SizeClass::Test);
            assert!(a.matches(&c), "{b} must be deterministic");
        }
    }

    #[test]
    fn labels_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_label(b.label()), Some(b));
        }
        assert_eq!(Benchmark::from_label("nope"), None);
    }

    #[test]
    fn window_counts_match_the_paper() {
        assert_eq!(Benchmark::Clamr.n_windows(), 9);
        assert_eq!(Benchmark::Dgemm.n_windows(), 5);
        assert_eq!(Benchmark::Hotspot.n_windows(), 5);
        assert_eq!(Benchmark::Lud.n_windows(), 4);
        assert_eq!(Benchmark::Nw.n_windows(), 4);
    }

    #[test]
    fn beam_set_excludes_nw() {
        assert!(!Benchmark::BEAM.contains(&Benchmark::Nw));
        assert_eq!(Benchmark::BEAM.len(), 5);
    }

    #[test]
    fn reset_restores_every_kernel_to_a_bit_identical_rerun() {
        // The pool/reset contract: after a full run — even one with injected
        // corruption — `reset()` must return the target to the pristine
        // pre-run state, so stepping to completion again reproduces the
        // golden output bit for bit.
        for b in Benchmark::ALL {
            let g = golden(b, SizeClass::Test);
            let mut t = build(b, SizeClass::Test);
            while t.step() == StepOutcome::Continue {}
            // Corrupt injectable state the way a fault model would, to prove
            // reset repairs inputs and controls, not just cursors.
            for v in t.variables() {
                if let Some(byte) = v.bytes.first_mut() {
                    *byte ^= 0x55;
                }
            }
            assert!(t.reset(), "{b} must support in-place reset");
            while t.step() == StepOutcome::Continue {}
            assert!(t.output().bits_equal(&g), "{b}: post-reset rerun must be bit-identical to the golden run");
        }
    }

    #[test]
    fn every_benchmark_exposes_control_and_bulk_state() {
        use carolfi::target::VarClass;
        for b in Benchmark::ALL {
            let mut t = build(b, SizeClass::Test);
            let vars = t.variables();
            assert!(vars.iter().any(|v| v.info.class == VarClass::ControlVariable), "{b} lacks control variables");
            assert!(vars.iter().any(|v| v.info.class == VarClass::Pointer), "{b} lacks pointer variables");
            assert!(vars.iter().any(|v| v.bytes.len() > 1024), "{b} lacks bulk data");
        }
    }
}
