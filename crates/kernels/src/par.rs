//! Deterministic data-parallel helper for the benchmark inner loops.
//!
//! The paper's benchmarks run 228 OpenMP threads on the Xeon Phi. Here each
//! benchmark models those as *logical threads* (data: control blocks plus a
//! fixed partition of the output), executed over a configurable number of OS
//! worker threads. The partition is fixed at construction time, so results
//! are bit-identical for any worker count — a prerequisite for classifying
//! any output mismatch as an SDC.
//!
//! Panics raised inside workers (out-of-bounds indexing caused by injected
//! faults, watchdog fuel exhaustion) are forwarded to the caller with their
//! original payload, so the supervisor can still distinguish crash DUEs from
//! timeout DUEs.

use std::panic::AssertUnwindSafe;

/// Runs `f(index, &mut items[index])` for every item, splitting the items
/// into contiguous chunks over `workers` OS threads.
///
/// With `workers <= 1` (the campaign default on this machine) everything
/// runs inline on the caller's thread.
pub fn par_for_each<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| {
                for (j, item) in chunk_items.iter_mut().enumerate() {
                    // Catch per-item so one corrupted logical thread doesn't
                    // skip its chunk-mates' work non-deterministically; the
                    // first payload is re-raised after the scope joins.
                    std::panic::catch_unwind(AssertUnwindSafe(|| f(ci * chunk + j, item)))?;
                }
                Ok(())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(p)) | Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
    })
    .expect("crossbeam scope failed");
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
}

/// Splits `total` items into `parts` contiguous ranges as evenly as possible
/// (the OpenMP static schedule). Returns `(start, end)` for `part`.
pub fn static_partition(total: usize, parts: usize, part: usize) -> (usize, usize) {
    assert!(part < parts);
    let base = total / parts;
    let rem = total % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_parallel_agree() {
        let mut a: Vec<u64> = (0..1000).collect();
        let mut b = a.clone();
        par_for_each(&mut a, 1, |i, x| *x = *x * 3 + i as u64);
        par_for_each(&mut b, 4, |i, x| *x = *x * 3 + i as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut xs = vec![0u8; 16];
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_for_each(&mut xs, 4, |i, _| {
                if i == 7 {
                    std::panic::panic_any(carolfi::fuel::TimeoutSignal);
                }
            });
        }));
        let payload = res.unwrap_err();
        assert!(carolfi::fuel::is_timeout(payload.as_ref()));
    }

    #[test]
    fn static_partition_covers_everything_once() {
        for total in [0usize, 1, 7, 228, 229, 1000] {
            for parts in [1usize, 3, 8, 228] {
                let mut covered = vec![false; total];
                let mut prev_end = 0;
                for p in 0..parts {
                    let (s, e) = static_partition(total, parts, p);
                    assert_eq!(s, prev_end);
                    prev_end = e;
                    for slot in covered.iter_mut().take(e).skip(s) {
                        assert!(!*slot);
                        *slot = true;
                    }
                }
                assert_eq!(prev_end, total);
                assert!(covered.into_iter().all(|c| c));
            }
        }
    }

    #[test]
    fn partition_sizes_differ_by_at_most_one() {
        for p in 0..5 {
            let (s, e) = static_partition(13, 5, p);
            assert!(e - s == 2 || e - s == 3);
        }
    }
}
