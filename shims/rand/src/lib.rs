//! Offline stand-in for `rand` 0.8.
//!
//! Provides the slice of the API this workspace uses — `rngs::StdRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, and `Rng::{gen, gen_range,
//! gen_bool}` — on top of a xoshiro256++ core. The stream is deterministic
//! for a given seed (the property every campaign depends on) but is *not*
//! bit-compatible with upstream `rand`'s ChaCha12-based `StdRng`; nothing in
//! this repository asserts against upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface (blanket-implemented like upstream).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from fixed seed material.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator under upstream's `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state; remix through
            // splitmix64 (which is a bijection, so no seed entropy is lost).
            if s == [0u64; 4] {
                return Self::seed_from_u64(0);
            }
            let mut z = s[0] ^ s[1].rotate_left(16) ^ s[2].rotate_left(32) ^ s[3].rotate_left(48);
            for word in &mut s {
                *word ^= splitmix64(&mut z);
            }
            if s == [0u64; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut z);
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(0usize..17);
            assert!(a < 17);
            let b = rng.gen_range(-4i32..=1);
            assert!((-4..=1).contains(&b));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn from_seed_distinguishes_seed_bytes() {
        let mut a = StdRng::from_seed([0u8; 32]);
        let mut b = StdRng::from_seed([1u8; 32]);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
