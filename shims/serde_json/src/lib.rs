//! Offline stand-in for `serde_json`: `to_string` / `from_str` over the shim
//! serde's `Content` tree. Covers the JSON-lines log format this workspace
//! reads and writes — objects, arrays, strings with escapes, integers kept
//! exact (i64/u64), floats rendered with Rust's shortest-round-trip `{}`.

use serde::__private::{Content, ContentDeserializer};

/// Error type (`std::error::Error + Send + Sync`, as `io::Error::other`
/// requires).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization.

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_into(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        // JSON has no NaN/Infinity; like upstream's to_string on a
        // non-finite f64 inside a container, fall back to null.
        Content::F64(v) if !v.is_finite() => out.push_str("null"),
        Content::F64(v) => {
            let s = v.to_string();
            out.push_str(&s);
            // Keep floats self-describing so they parse back as floats.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                render_into(out, v);
            }
            out.push('}');
        }
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::__private::to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    render_into(&mut out, &content);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Content::Null),
            Some(b't') => self.expect_literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid utf-8"))?);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))?;
        if !is_float {
            // Keep integers exact when they fit.
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.err("bad number"))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Parses a JSON string into a deserializable value.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    T::deserialize(ContentDeserializer::new(&content)).map_err(|e| Error(e.to_string()))
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Rec {
        name: String,
        count: u64,
        scale: f64,
        flags: Vec<bool>,
        note: Option<String>,
    }

    #[test]
    fn roundtrip_struct() {
        let r = Rec {
            name: "he said \"hi\"\n\ttab".into(),
            count: u64::MAX,
            scale: 0.1 + 0.2,
            flags: vec![true, false],
            note: None,
        };
        let s = super::to_string(&r).unwrap();
        let back: Rec = super::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn floats_render_self_describing() {
        assert_eq!(super::to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(super::to_string(&-0.5f64).unwrap(), "-0.5");
        let v: f64 = super::from_str("1.0").unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = super::from_str(r#""aé\nA 😀""#).unwrap();
        assert_eq!(s, "aé\nA 😀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(super::from_str::<u64>("12 34").is_err());
        assert!(super::from_str::<u64>("{").is_err());
        assert!(super::from_str::<Vec<u8>>("[1,2,").is_err());
        assert!(super::from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        let v: u64 = super::from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let w: i64 = super::from_str("-9223372036854775808").unwrap();
        assert_eq!(w, i64::MIN);
    }
}
