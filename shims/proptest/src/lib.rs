//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (both `name in strategy` and `name: Type` argument
//! forms), `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`, and
//! `any::<T>()`. Cases are generated from a deterministic per-test seed
//! (derived from the test name) so failures are reproducible; there is no
//! shrinking — the failure message reports the case seed instead.

use std::ops::Range;

/// Number of accepted cases per property (override with `PROPTEST_CASES`).
const DEFAULT_CASES: u32 = 64;

// ---------------------------------------------------------------------------
// Deterministic generator.

/// Case-local random source (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategies.

/// A recipe for producing random values (no shrinking in the shim).
pub trait Strategy {
    type Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full-domain floats (upstream mixes in specials; tests here only
        // use finite values, so sample a wide symmetric range).
        (rng.next_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Strategy namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice among the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

// ---------------------------------------------------------------------------
// Runner.

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — fails the whole property.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// Drives one property: repeatedly generates a case seed, runs the body, and
/// panics with the seed on the first failure. Not part of the upstream API —
/// the `proptest!` macro expands to calls of this.
pub fn __run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test base seed (FNV-1a over the name).
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base = (base ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let cases = configured_cases();
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while accepted < cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case += 1;
        let mut rng = TestRng::new(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cases * 20,
                    "property {name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed (case seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Declares property tests. Each function body runs once per generated case;
/// arguments are bound either from an explicit strategy (`x in 0..10`) or
/// from the type's [`Arbitrary`] impl (`x: u64`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases(stringify!($name), |__rng| {
                    $crate::__bind!(__rng, $($args)*);
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Internal: binds `proptest!` argument lists. Public only for macro
/// expansion.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::pick(&($strat), $rng);
        $crate::__bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::pick(&($strat), $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Mirror of `proptest::prelude` — the glob import property tests start with.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..17, y in -3i64..4, f in 0.25f64..0.75) {
            prop_assert!(x < 17);
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn arbitrary_and_strategy_forms_mix(value: u64, low_bits in 0u32..8, flag: bool) {
            let masked = value >> low_bits;
            prop_assert!(masked <= value);
            if flag {
                prop_assert_eq!(masked << low_bits >> low_bits, masked);
            }
        }

        #[test]
        fn vec_strategy_respects_size(items in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&items.len()));
        }

        #[test]
        fn select_only_yields_options(v in prop::sample::select(vec![3usize, 5, 8])) {
            prop_assert!(v == 3 || v == 5 || v == 8);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<u64> = Vec::new();
        crate::__run_cases("determinism_probe", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::__run_cases("determinism_probe", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }
}
