//! Offline stand-in for `serde`.
//!
//! The real serde drives serialization through a visitor protocol; this shim
//! collapses that to a JSON-shaped [`__private::Content`] tree, which is all
//! the workspace needs (every serialized type round-trips through JSON
//! lines). The public surface mirrors the fragments of serde's API the
//! workspace spells out by hand:
//!
//! * `Serialize` / `Deserialize` traits plus the re-exported derives;
//! * `Serializer` with `serialize_f64` / `serialize_str` (the `finite_or_tag`
//!   codec) and `Deserializer` with a `Content`-producing entry point;
//! * `ser::Error` / `de::Error` with `custom`.
//!
//! The derive macros (see the sibling `serde_derive` shim) generate
//! implementations of [`__private::FromContent`], the workhorse trait used
//! to decode nested fields, plus bridging `Deserialize` impls.

// Derive-generated code refers to `serde::...`; alias self so the derives
// also work inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// Error constraint for serializers (mirror of `serde::ser::Error`).
    pub trait Error: Sized + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Error constraint for deserializers (mirror of `serde::de::Error`).
    pub trait Error: Sized + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A type that can be serialized.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Data sink. Unlike upstream's 30-method protocol, the shim asks for the
/// three entry points the workspace uses; everything else routes through a
/// pre-built [`__private::Content`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Accepts a fully built content tree (used by derived impls).
    fn serialize_content(self, content: __private::Content) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Data source: yields the parsed content tree for `FromContent` decoding.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn content(self) -> Result<__private::Content, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(__private::Content::I64(*self as i64))
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(__private::Content::U64(*self as u64))
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(__private::Content::Bool(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

fn seq_content<S: Serializer, T: Serialize>(items: &[T]) -> Result<__private::Content, S::Error> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(__private::to_content(item).map_err(<S::Error as ser::Error>::custom)?);
    }
    Ok(__private::Content::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<S, T>(self)?;
        s.serialize_content(c)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_content(__private::Content::Null),
            Some(v) => v.serialize(s),
        }
    }
}

// ---------------------------------------------------------------------------
// Support machinery used by the derive macros (name-mangled like upstream's
// `serde::__private`, and equally not a stable public API).

pub mod __private {
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};

    /// JSON-shaped data model every serialized value lowers to.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Content>),
        Map(Vec<(String, Content)>),
    }

    impl Content {
        fn kind(&self) -> &'static str {
            match self {
                Content::Null => "null",
                Content::Bool(_) => "bool",
                Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
                Content::Str(_) => "string",
                Content::Seq(_) => "sequence",
                Content::Map(_) => "map",
            }
        }
    }

    /// Error shared by content construction and decoding.
    #[derive(Debug, Clone)]
    pub struct ContentError(String);

    impl ContentError {
        pub fn msg(m: &str) -> Self {
            ContentError(m.to_string())
        }
    }

    impl std::fmt::Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl ser::Error for ContentError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl de::Error for ContentError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// Serializer whose output *is* the content tree.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_f64(self, v: f64) -> Result<Content, ContentError> {
            Ok(Content::F64(v))
        }

        fn serialize_str(self, v: &str) -> Result<Content, ContentError> {
            Ok(Content::Str(v.to_string()))
        }

        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Lowers any serializable value to its content tree.
    pub fn to_content<T: Serialize + ?Sized>(v: &T) -> Result<Content, ContentError> {
        v.serialize(ContentSerializer)
    }

    /// Deserializer reading back out of a content tree.
    pub struct ContentDeserializer {
        content: Content,
    }

    impl ContentDeserializer {
        pub fn new(content: &Content) -> Self {
            ContentDeserializer { content: content.clone() }
        }
    }

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = ContentError;

        fn content(self) -> Result<Content, ContentError> {
            Ok(self.content)
        }
    }

    /// Decoding out of a content tree; derived `Deserialize` impls are thin
    /// bridges over this (it is what nested-field decoding calls).
    pub trait FromContent: Sized {
        fn from_content(c: &Content) -> Result<Self, ContentError>;
    }

    // -- helpers the derive-generated code calls ---------------------------

    pub fn as_map(c: &Content) -> Result<&[(String, Content)], ContentError> {
        match c {
            Content::Map(m) => Ok(m),
            other => Err(ContentError(format!("expected map, found {}", other.kind()))),
        }
    }

    pub fn as_seq(c: &Content) -> Result<&[Content], ContentError> {
        match c {
            Content::Seq(s) => Ok(s),
            other => Err(ContentError(format!("expected sequence, found {}", other.kind()))),
        }
    }

    pub fn idx(seq: &[Content], i: usize) -> Result<&Content, ContentError> {
        seq.get(i).ok_or_else(|| ContentError(format!("sequence too short: no element {i}")))
    }

    pub fn field_content<'a>(m: &'a [(String, Content)], name: &str) -> Result<&'a Content, ContentError> {
        m.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| ContentError(format!("missing field {name:?}")))
    }

    pub fn field<T: FromContent>(m: &[(String, Content)], name: &str) -> Result<T, ContentError> {
        T::from_content(field_content(m, name)?).map_err(|e| ContentError(format!("field {name:?}: {e}")))
    }

    pub fn content_to<T: FromContent>(c: &Content) -> Result<T, ContentError> {
        T::from_content(c)
    }

    /// Splits an externally tagged enum value into `(variant_name, payload)`.
    /// A bare string is a unit variant; a one-entry map carries a payload.
    pub fn enum_parts(c: &Content) -> Result<(&str, Option<&Content>), ContentError> {
        match c {
            Content::Str(s) => Ok((s, None)),
            Content::Map(m) if m.len() == 1 => Ok((&m[0].0, Some(&m[0].1))),
            other => Err(ContentError(format!("expected enum (string or 1-entry map), found {}", other.kind()))),
        }
    }

    /// Payload of a non-unit variant (errors if the tag arrived bare).
    pub fn variant_inner<'a>(inner: Option<&'a Content>, name: &str) -> Result<&'a Content, ContentError> {
        inner.ok_or_else(|| ContentError(format!("variant {name} expects a payload")))
    }

    // -- FromContent impls for primitives and std containers ---------------

    macro_rules! impl_from_content_int {
        ($($t:ty),*) => {$(
            impl FromContent for $t {
                fn from_content(c: &Content) -> Result<Self, ContentError> {
                    match c {
                        Content::I64(v) => <$t>::try_from(*v)
                            .map_err(|_| ContentError(format!("{v} out of range for {}", stringify!($t)))),
                        Content::U64(v) => <$t>::try_from(*v)
                            .map_err(|_| ContentError(format!("{v} out of range for {}", stringify!($t)))),
                        other => Err(ContentError(format!(
                            "expected integer for {}, found {}", stringify!($t), other.kind()
                        ))),
                    }
                }
            }
        )*};
    }
    impl_from_content_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl FromContent for bool {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            match c {
                Content::Bool(b) => Ok(*b),
                other => Err(ContentError(format!("expected bool, found {}", other.kind()))),
            }
        }
    }

    impl FromContent for f64 {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            match c {
                Content::F64(v) => Ok(*v),
                Content::I64(v) => Ok(*v as f64),
                Content::U64(v) => Ok(*v as f64),
                other => Err(ContentError(format!("expected number, found {}", other.kind()))),
            }
        }
    }

    impl FromContent for f32 {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            f64::from_content(c).map(|v| v as f32)
        }
    }

    impl FromContent for String {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            match c {
                Content::Str(s) => Ok(s.clone()),
                other => Err(ContentError(format!("expected string, found {}", other.kind()))),
            }
        }
    }

    impl<T: FromContent> FromContent for Vec<T> {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            as_seq(c)?.iter().map(T::from_content).collect()
        }
    }

    impl<T: FromContent, const N: usize> FromContent for [T; N] {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            let v: Vec<T> = Vec::from_content(c)?;
            let n = v.len();
            v.try_into().map_err(|_| ContentError(format!("expected array of length {N}, found {n}")))
        }
    }

    impl<T: FromContent> FromContent for Box<T> {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            T::from_content(c).map(Box::new)
        }
    }

    impl<T: FromContent> FromContent for Option<T> {
        fn from_content(c: &Content) -> Result<Self, ContentError> {
            match c {
                Content::Null => Ok(None),
                other => T::from_content(other).map(Some),
            }
        }
    }

    // Bridging Deserialize impls so hand-written codecs (e.g. the untagged
    // `Raw` enum in finite_or_tag) can deserialize primitives directly.
    macro_rules! impl_deserialize_via_content {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let c = d.content()?;
                    <$t as FromContent>::from_content(&c).map_err(<D::Error as de::Error>::custom)
                }
            }
        )*};
    }
    impl_deserialize_via_content!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64, String);

    impl<'de, T: FromContent> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let c = d.content()?;
            Vec::from_content(&c).map_err(<D::Error as de::Error>::custom)
        }
    }

    impl<'de, T: FromContent> Deserialize<'de> for Option<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let c = d.content()?;
            Option::from_content(&c).map_err(<D::Error as de::Error>::custom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::__private::{to_content, Content, ContentDeserializer, FromContent};
    use super::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i64,
        y: Option<u16>,
        tags: Vec<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle { r: f64 },
        Pair(u8),
    }

    #[test]
    fn derived_struct_roundtrips_through_content() {
        let p = Point { x: -3, y: Some(7), tags: vec!["a".into(), "b".into()] };
        let c = to_content(&p).unwrap();
        let back = Point::deserialize(ContentDeserializer::new(&c)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn derived_enum_roundtrips_all_variant_shapes() {
        for v in [Shape::Dot, Shape::Circle { r: 2.5 }, Shape::Pair(9)] {
            let c = to_content(&v).unwrap();
            let back = Shape::deserialize(ContentDeserializer::new(&c)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn unit_variants_are_bare_strings() {
        assert_eq!(to_content(&Shape::Dot).unwrap(), Content::Str("Dot".into()));
    }

    #[test]
    fn option_none_is_null() {
        let p = Point { x: 0, y: None, tags: vec![] };
        let c = to_content(&p).unwrap();
        let Content::Map(m) = &c else { panic!("expected map") };
        assert_eq!(m.iter().find(|(k, _)| k == "y").unwrap().1, Content::Null);
        assert_eq!(Point::deserialize(ContentDeserializer::new(&c)).unwrap(), p);
    }

    #[test]
    fn integer_range_errors_are_reported() {
        let c = Content::U64(70_000);
        assert!(u16::from_content(&c).is_err());
    }
}
