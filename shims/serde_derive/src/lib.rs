//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access (so no `syn`/`quote` either);
//! this macro parses the item declaration directly from the
//! [`proc_macro::TokenStream`] and emits impls against the shim `serde`'s
//! JSON-shaped `Content` data model:
//!
//! * `Serialize` — builds a `serde::__private::Content` tree and hands it to
//!   the serializer's `serialize_content`;
//! * `Deserialize` — implements `serde::__private::FromContent` (the
//!   workhorse used for nested fields) plus a bridging `Deserialize` impl.
//!
//! Supported shapes are exactly what this workspace derives on: structs with
//! named fields, newtype/tuple structs, unit/newtype/tuple/struct-variant
//! enums (externally tagged), `#[serde(with = "path")]` on named fields, and
//! `#[serde(untagged)]` on all-newtype enums (Deserialize only). Const
//! generics are carried through; anything unsupported fails with a
//! `compile_error!` naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape of the deriving item.

struct Input {
    name: String,
    /// Generic parameter list verbatim (without the angle brackets), e.g.
    /// `const M : u64`. Empty when the item is not generic.
    generic_params: String,
    /// Matching argument list, e.g. `M`.
    generic_args: String,
    kind: Kind,
    untagged: bool,
}

enum Kind {
    /// Struct with named fields.
    Struct(Vec<Field>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token utilities.

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Splits a token slice on commas that sit outside nested `<...>` pairs.
/// Commas inside parenthesised/bracketed groups never show up because a
/// group is a single `TokenTree`.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if is_punct(t, '<') {
            angle_depth += 1;
        } else if is_punct(t, '>') {
            angle_depth -= 1;
        } else if is_punct(t, ',') && angle_depth == 0 {
            out.push(std::mem::take(&mut current));
            continue;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts `with = "path"` / `untagged` from a `#[serde(...)]` attribute
/// body; returns `(with, untagged)`.
fn parse_serde_attr(group: &proc_macro::Group) -> (Option<String>, bool) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.first().and_then(ident_of).as_deref() != Some("serde") {
        return (None, false);
    }
    let Some(TokenTree::Group(inner)) = tokens.get(1) else {
        return (None, false);
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut with = None;
    let mut untagged = false;
    let mut i = 0;
    while i < inner.len() {
        match ident_of(&inner[i]).as_deref() {
            Some("untagged") => untagged = true,
            Some("with") if i + 2 < inner.len() && is_punct(&inner[i + 1], '=') => {
                if let TokenTree::Literal(lit) = &inner[i + 2] {
                    let s = lit.to_string();
                    with = Some(s.trim_matches('"').to_string());
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (with, untagged)
}

/// Parses the fields of a named-fields brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    for segment in split_top_level_commas(&tokens) {
        let mut with = None;
        let mut i = 0;
        // Attributes.
        while i + 1 < segment.len() && is_punct(&segment[i], '#') {
            if let TokenTree::Group(g) = &segment[i + 1] {
                if let (Some(w), _) = parse_serde_attr(g) {
                    with = Some(w);
                }
            }
            i += 2;
        }
        // Visibility.
        if segment.get(i).and_then(ident_of).as_deref() == Some("pub") {
            i += 1;
            if matches!(segment.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = segment.get(i).and_then(ident_of).ok_or_else(|| "expected field name".to_string())?;
        fields.push(Field { name, with });
    }
    Ok(fields)
}

/// Arity of a tuple struct/variant paren group.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    split_top_level_commas(&tokens).len()
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    for segment in split_top_level_commas(&tokens) {
        let mut i = 0;
        while i + 1 < segment.len() && is_punct(&segment[i], '#') {
            i += 2; // skip attributes (doc comments)
        }
        let name = segment.get(i).and_then(ident_of).ok_or_else(|| "expected variant name".to_string())?;
        i += 1;
        let shape = match segment.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple(tuple_arity(g)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct(parse_named_fields(g)?),
            Some(t) if is_punct(t, '=') => return Err(format!("discriminant on variant {name} is not supported")),
            Some(other) => return Err(format!("unexpected token {other} after variant {name}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Parses `<...>` generics starting at `tokens[i]` (which must be `<`);
/// returns (params, args, index-after-`>`).
fn parse_generics(tokens: &[TokenTree], start: usize) -> Result<(String, String, usize), String> {
    let mut depth = 0i32;
    let mut i = start;
    let mut inner: Vec<TokenTree> = Vec::new();
    loop {
        let t = tokens.get(i).ok_or_else(|| "unterminated generics".to_string())?;
        if is_punct(t, '<') {
            depth += 1;
            if depth > 1 {
                inner.push(t.clone());
            }
        } else if is_punct(t, '>') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
            inner.push(t.clone());
        } else {
            inner.push(t.clone());
        }
        i += 1;
    }
    let params = inner.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
    let mut args = Vec::new();
    for segment in split_top_level_commas(&inner) {
        let arg = match segment.first() {
            Some(t) if is_punct(t, '\'') => {
                let life = segment.get(1).and_then(ident_of).ok_or("bad lifetime param")?;
                format!("'{life}")
            }
            Some(t) if ident_of(t).as_deref() == Some("const") => segment.get(1).and_then(ident_of).ok_or("bad const param")?,
            Some(t) => ident_of(t).ok_or_else(|| format!("unsupported generic param starting at {t}"))?,
            None => continue,
        };
        args.push(arg);
    }
    Ok((params, args.join(", "), i))
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut untagged = false;
    let mut i = 0;
    let is_enum = loop {
        match tokens.get(i) {
            None => return Err("no struct or enum found".into()),
            Some(t) if is_punct(t, '#') => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let (_, u) = parse_serde_attr(g);
                    untagged |= u;
                }
                i += 2;
            }
            Some(t) => match ident_of(t).as_deref() {
                Some("struct") => break false,
                Some("enum") => break true,
                _ => i += 1, // visibility and such
            },
        }
    };
    i += 1;
    let name = tokens.get(i).and_then(ident_of).ok_or_else(|| "expected item name".to_string())?;
    i += 1;
    let (generic_params, generic_args) = if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        let (p, a, next) = parse_generics(&tokens, i)?;
        i = next;
        (p, a)
    } else {
        (String::new(), String::new())
    };
    // Skip a `where` clause if one ever appears.
    if tokens.get(i).and_then(ident_of).as_deref() == Some("where") {
        return Err("where clauses are not supported".into());
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g)?)
            } else {
                Kind::Struct(parse_named_fields(g)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => Kind::Tuple(tuple_arity(g)),
        other => return Err(format!("unsupported item body: {other:?}")),
    };
    Ok(Input { name, generic_params, generic_args, kind, untagged })
}

// ---------------------------------------------------------------------------
// Code generation.

impl Input {
    /// `impl <params> Trait for Name<args>` header fragments; `extra` adds
    /// parameters (the `'de` of Deserialize).
    fn impl_header(&self, extra: &str) -> (String, String) {
        let params = match (extra.is_empty(), self.generic_params.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("<{}>", self.generic_params),
            (false, true) => format!("<{extra}>"),
            (false, false) => format!("<{extra}, {}>", self.generic_params),
        };
        let target = if self.generic_args.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generic_args)
        };
        (params, target)
    }
}

const MAP_ERR_SER: &str = ".map_err(|e| <__S::Error as serde::ser::Error>::custom(e))?";

/// Expression producing the `Content` for one field value expression.
fn field_to_content(value_expr: &str, with: &Option<String>, map_err: &str) -> String {
    match with {
        Some(path) => format!("{path}::serialize({value_expr}, serde::__private::ContentSerializer){map_err}"),
        None => format!("serde::__private::to_content({value_expr}){map_err}"),
    }
}

/// Expression building a `Content::Map` from named fields; `accessor` maps a
/// field name to the value expression (e.g. `&self.name` or `name`).
fn named_fields_content(fields: &[Field], accessor: impl Fn(&str) -> String, map_err: &str) -> String {
    let mut pushes = String::new();
    for f in fields {
        let value = field_to_content(&accessor(&f.name), &f.with, map_err);
        pushes.push_str(&format!("__fields.push((::std::string::String::from(\"{}\"), {value}));\n", f.name));
    }
    format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, serde::__private::Content)> = ::std::vec::Vec::new();\n\
         {pushes} serde::__private::Content::Map(__fields) }}"
    )
}

fn gen_serialize(input: &Input) -> Result<String, String> {
    if input.untagged {
        return Err("#[serde(untagged)] Serialize is not supported by the shim derive".into());
    }
    let (params, target) = input.impl_header("");
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let content = named_fields_content(fields, |n| format!("&self.{n}"), MAP_ERR_SER);
            format!("__s.serialize_content({content})")
        }
        Kind::Tuple(1) => format!("__s.serialize_content(serde::__private::to_content(&self.0){MAP_ERR_SER})"),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("serde::__private::to_content(&self.{i}){MAP_ERR_SER}")).collect();
            format!("__s.serialize_content(serde::__private::Content::Seq(::std::vec![{}]))", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &input.name;
                let vname = &v.name;
                let arm = match &v.shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => __s.serialize_content(serde::__private::Content::Str(::std::string::String::from(\"{vname}\"))),\n"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => __s.serialize_content(serde::__private::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), serde::__private::to_content(__f0){MAP_ERR_SER})])),\n"
                    ),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binders.iter().map(|b| format!("serde::__private::to_content({b}){MAP_ERR_SER}")).collect();
                        format!(
                            "{name}::{vname}({}) => __s.serialize_content(serde::__private::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), serde::__private::Content::Seq(::std::vec![{}]))])),\n",
                            binders.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_content(fields, |n| n.to_string(), MAP_ERR_SER);
                        format!(
                            "{name}::{vname} {{ {} }} => __s.serialize_content(serde::__private::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {inner})])),\n",
                            binders.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl {params} serde::Serialize for {target} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

/// Expression deserializing one named field out of `__m`.
fn field_from_content(field: &Field) -> String {
    match &field.with {
        Some(path) => format!(
            "{path}::deserialize(serde::__private::ContentDeserializer::new(serde::__private::field_content(__m, \"{}\")?))?",
            field.name
        ),
        None => format!("serde::__private::field(__m, \"{}\")?", field.name),
    }
}

fn named_struct_expr(type_path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields.iter().map(|f| format!("{}: {}", f.name, field_from_content(f))).collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> Result<String, String> {
    let name = &input.name;
    let from_content_body = match &input.kind {
        Kind::Struct(fields) => {
            format!(
                "let __m = serde::__private::as_map(__c)?;\n::core::result::Result::Ok({})",
                named_struct_expr(name, fields)
            )
        }
        Kind::Tuple(1) => format!("::core::result::Result::Ok({name}(serde::__private::content_to(__c)?))"),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("serde::__private::content_to(serde::__private::idx(__seq, {i})?)?")).collect();
            format!(
                "let __seq = serde::__private::as_seq(__c)?;\n::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) if input.untagged => {
            let mut attempts = String::new();
            for v in variants {
                let vname = &v.name;
                match v.shape {
                    Shape::Tuple(1) => attempts.push_str(&format!(
                        "if let ::core::result::Result::Ok(__v) = serde::__private::content_to(__c) {{\n\
                             return ::core::result::Result::Ok({name}::{vname}(__v));\n\
                         }}\n"
                    )),
                    _ => return Err(format!("untagged enums only support newtype variants (variant {vname})")),
                }
            }
            format!(
                "{attempts}::core::result::Result::Err(serde::__private::ContentError::msg(\
                 \"data matched no variant of untagged enum {name}\"))"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match &v.shape {
                    Shape::Unit => format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"),
                    Shape::Tuple(1) => format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         serde::__private::content_to(serde::__private::variant_inner(__inner, \"{vname}\")?)?)),\n"
                    ),
                    Shape::Tuple(n) => {
                        let items: Vec<String> =
                            (0..*n).map(|i| format!("serde::__private::content_to(serde::__private::idx(__seq, {i})?)?")).collect();
                        format!(
                            "\"{vname}\" => {{\n\
                                 let __seq = serde::__private::as_seq(serde::__private::variant_inner(__inner, \"{vname}\")?)?;\n\
                                 ::core::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        )
                    }
                    Shape::Struct(fields) => format!(
                        "\"{vname}\" => {{\n\
                             let __m = serde::__private::as_map(serde::__private::variant_inner(__inner, \"{vname}\")?)?;\n\
                             ::core::result::Result::Ok({})\n\
                         }}\n",
                        named_struct_expr(&format!("{name}::{vname}"), fields)
                    ),
                };
                arms.push_str(&arm);
            }
            format!(
                "let (__tag, __inner) = serde::__private::enum_parts(__c)?;\n\
                 match __tag {{\n{arms}\
                 __other => ::core::result::Result::Err(serde::__private::ContentError::msg(\
                 &format!(\"unknown variant {{__other}} of enum {name}\"))),\n}}"
            )
        }
    };
    let (params, target) = input.impl_header("");
    let (de_params, _) = input.impl_header("'de");
    Ok(format!(
        "#[automatically_derived]\n\
         impl {params} serde::__private::FromContent for {target} {{\n\
             fn from_content(__c: &serde::__private::Content) -> ::core::result::Result<Self, serde::__private::ContentError> {{\n\
                 {from_content_body}\n\
             }}\n\
         }}\n\
         #[automatically_derived]\n\
         impl {de_params} serde::Deserialize<'de> for {target} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 let __c = __d.content()?;\n\
                 <Self as serde::__private::FromContent>::from_content(&__c)\
                     .map_err(|e| <__D::Error as serde::de::Error>::custom(e))\n\
             }}\n\
         }}\n"
    ))
}

fn expand(input: TokenStream, gen: fn(&Input) -> Result<String, String>) -> TokenStream {
    let code = parse(input).and_then(|parsed| gen(&parsed));
    match code {
        Ok(code) => code.parse().expect("shim serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
