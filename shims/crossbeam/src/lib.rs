//! Offline stand-in for `crossbeam`, backed by `std::thread::scope` and a
//! Mutex+Condvar MPMC channel.
//!
//! The workspace uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join` plus `crossbeam::channel::unbounded`, so that is
//! all this shim provides. Semantics mirror crossbeam's:
//!
//! * `scope` returns `Err(first_panic_payload)` when a spawned thread
//!   panicked and its handle was dropped unjoined (std would abort the scope
//!   with a panic instead);
//! * `join` returns `Err(payload)` for a panicked thread, with the original
//!   payload preserved so callers can re-raise it (`par_for_each` relies on
//!   payload identity to tell watchdog timeouts from crash DUEs).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn Any + Send + 'static>;

    /// Mirror of `crossbeam::thread::Scope`.
    ///
    /// The panic-payload pool is an `Arc` rather than a reference because
    /// `std::thread::scope`'s closure is higher-ranked over `'scope`: a
    /// borrow of a local can't be handed to every possible `'scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Payloads of panicked threads whose handles were never joined.
        orphaned: Arc<Mutex<Vec<Payload>>>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, ()>>,
        orphaned: Arc<Mutex<Vec<Payload>>>,
    }

    /// Argument handed to spawned closures. Crossbeam passes `&Scope` for
    /// nested spawning; every call site in this workspace ignores it (`|_|`),
    /// so a zero-sized placeholder keeps the shim free of the self-referential
    /// lifetime juggling nested spawns would need.
    #[derive(Clone, Copy)]
    pub struct NestedScope;

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let orphaned = Arc::clone(&self.orphaned);
            let inner = self.inner.spawn(move || match catch_unwind(AssertUnwindSafe(|| f(NestedScope))) {
                Ok(v) => Ok(v),
                Err(payload) => {
                    orphaned.lock().unwrap_or_else(|p| p.into_inner()).push(payload);
                    Err(())
                }
            });
            ScopedJoinHandle { inner, orphaned: Arc::clone(&self.orphaned) }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; a panicked thread yields `Err(payload)`.
        pub fn join(self) -> Result<T, Payload> {
            match self.inner.join() {
                Ok(Ok(v)) => Ok(v),
                // The closure panicked and parked its payload in `orphaned`;
                // reclaim one so the caller can re-raise it.
                _ => {
                    let mut pool = self.orphaned.lock().unwrap_or_else(|p| p.into_inner());
                    Err(pool.pop().unwrap_or_else(|| Box::new("thread panicked")))
                }
            }
        }
    }

    /// Mirror of `crossbeam::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let orphaned: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let result = std::thread::scope(|s| {
            let scope = Scope { inner: s, orphaned: Arc::clone(&orphaned) };
            f(&scope)
        });
        let mut leftovers = std::mem::take(&mut *orphaned.lock().unwrap_or_else(|p| p.into_inner()));
        if leftovers.is_empty() {
            Ok(result)
        } else {
            Err(leftovers.remove(0))
        }
    }
}

pub mod channel {
    //! Mirror of `crossbeam::channel`: an unbounded MPMC queue.
    //!
    //! Disconnection semantics match crossbeam's: `recv` on an empty channel
    //! blocks until a message arrives or every `Sender` is dropped; a send
    //! after every `Receiver` is dropped returns the message back in a
    //! `SendError`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Mirror of `crossbeam::channel::SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Mirror of `crossbeam::channel::RecvError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Mirror of `crossbeam::channel::TryRecvError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Mirror of `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn channel_delivers_in_fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_unblocks_on_sender_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_all_receivers_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn many_producers_many_consumers_drain_everything() {
        let (tx, rx) = unbounded::<u64>();
        let total: u64 = std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(s.spawn(move || rx.iter().sum::<u64>()));
            }
            for p in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let expected: u64 = (0..4u64).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn scope_joins_and_returns_closure_value() {
        let mut acc = vec![0u64; 4];
        let r = super::thread::scope(|scope| {
            for (i, slot) in acc.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 + 1);
            }
            7u32
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(acc, vec![1, 2, 3, 4]);
    }

    #[test]
    fn join_preserves_panic_payload() {
        struct Marker;
        let r = super::thread::scope(|scope| {
            let h = scope.spawn(|_| {
                std::panic::panic_any(Marker);
            });
            h.join()
        })
        .expect("joined panics are not orphaned");
        assert!(r.unwrap_err().downcast_ref::<Marker>().is_some());
    }

    #[test]
    fn unjoined_panic_surfaces_as_scope_error() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("dropped handle"));
        });
        assert!(r.is_err());
    }
}
