//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`, so that is all this shim provides. Semantics
//! mirror crossbeam's:
//!
//! * `scope` returns `Err(first_panic_payload)` when a spawned thread
//!   panicked and its handle was dropped unjoined (std would abort the scope
//!   with a panic instead);
//! * `join` returns `Err(payload)` for a panicked thread, with the original
//!   payload preserved so callers can re-raise it (`par_for_each` relies on
//!   payload identity to tell watchdog timeouts from crash DUEs).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn Any + Send + 'static>;

    /// Mirror of `crossbeam::thread::Scope`.
    ///
    /// The panic-payload pool is an `Arc` rather than a reference because
    /// `std::thread::scope`'s closure is higher-ranked over `'scope`: a
    /// borrow of a local can't be handed to every possible `'scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Payloads of panicked threads whose handles were never joined.
        orphaned: Arc<Mutex<Vec<Payload>>>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, ()>>,
        orphaned: Arc<Mutex<Vec<Payload>>>,
    }

    /// Argument handed to spawned closures. Crossbeam passes `&Scope` for
    /// nested spawning; every call site in this workspace ignores it (`|_|`),
    /// so a zero-sized placeholder keeps the shim free of the self-referential
    /// lifetime juggling nested spawns would need.
    #[derive(Clone, Copy)]
    pub struct NestedScope;

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let orphaned = Arc::clone(&self.orphaned);
            let inner = self.inner.spawn(move || match catch_unwind(AssertUnwindSafe(|| f(NestedScope))) {
                Ok(v) => Ok(v),
                Err(payload) => {
                    orphaned.lock().unwrap_or_else(|p| p.into_inner()).push(payload);
                    Err(())
                }
            });
            ScopedJoinHandle { inner, orphaned: Arc::clone(&self.orphaned) }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; a panicked thread yields `Err(payload)`.
        pub fn join(self) -> Result<T, Payload> {
            match self.inner.join() {
                Ok(Ok(v)) => Ok(v),
                // The closure panicked and parked its payload in `orphaned`;
                // reclaim one so the caller can re-raise it.
                _ => {
                    let mut pool = self.orphaned.lock().unwrap_or_else(|p| p.into_inner());
                    Err(pool.pop().unwrap_or_else(|| Box::new("thread panicked")))
                }
            }
        }
    }

    /// Mirror of `crossbeam::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let orphaned: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let result = std::thread::scope(|s| {
            let scope = Scope { inner: s, orphaned: Arc::clone(&orphaned) };
            f(&scope)
        });
        let mut leftovers = std::mem::take(&mut *orphaned.lock().unwrap_or_else(|p| p.into_inner()));
        if leftovers.is_empty() {
            Ok(result)
        } else {
            Err(leftovers.remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns_closure_value() {
        let mut acc = vec![0u64; 4];
        let r = super::thread::scope(|scope| {
            for (i, slot) in acc.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 + 1);
            }
            7u32
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(acc, vec![1, 2, 3, 4]);
    }

    #[test]
    fn join_preserves_panic_payload() {
        struct Marker;
        let r = super::thread::scope(|scope| {
            let h = scope.spawn(|_| {
                std::panic::panic_any(Marker);
            });
            h.join()
        })
        .expect("joined panics are not orphaned");
        assert!(r.unwrap_err().downcast_ref::<Marker>().is_some());
    }

    #[test]
    fn unjoined_panic_surfaces_as_scope_error() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("dropped handle"));
        });
        assert!(r.is_err());
    }
}
