//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's `harness = false` benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock median over a few
//! auto-calibrated batches: good enough to compare variants and to back the
//! "null telemetry path costs nanoseconds" claim, with none of upstream's
//! statistics machinery.
//!
//! `cargo bench` runs every registered function and prints
//! `group/name  time: … ns/iter`. Passing `--test` (as `cargo test --benches`
//! does) runs each benchmark once, as a smoke test.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    smoke_only: bool,
}

impl Criterion {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        // `cargo test --benches` passes --test; `cargo bench` passes --bench.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 50 }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes how many samples the statistics use; the shim keeps
    /// the knob (benches set it) and scales measurement repetitions with it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.criterion.smoke_only {
            f(&mut bencher);
            println!("{}/{}: ok (smoke test)", self.name, id);
            return self;
        }
        // Calibrate the per-batch iteration count to ~5 ms.
        let mut iters = 1u64;
        loop {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Median of repeated batches (count scaled by sample_size).
        let batches = (self.sample_size / 10).clamp(3, 15);
        let mut per_iter: Vec<f64> = (0..batches)
            .map(|_| {
                bencher.iters = iters;
                bencher.elapsed = Duration::ZERO;
                f(&mut bencher);
                bencher.elapsed.as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        println!("{}/{:<40} time: {:>12.2} ns/iter  ({} iters/batch, {} batches)", self.name, id, median, iters, batches);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirror of upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of upstream's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_measures_and_runs_routine() {
        let mut b = super::Bencher { iters: 100, elapsed: std::time::Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 100);
    }

    #[test]
    fn group_smoke_runs_each_function_once_in_test_mode() {
        let mut c = super::Criterion { smoke_only: true };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(20).bench_function("f", |b| {
            b.iter(|| 1 + 1);
            calls += 1;
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
