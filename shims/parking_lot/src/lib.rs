//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! small API slice it actually uses: `Mutex::{new, lock, into_inner}` and
//! `RwLock::{new, read, write}`. Poisoning is swallowed (parking_lot has no
//! poisoning), which matches the semantics campaign code was written against:
//! a panicking trial must not wedge the slot it was writing to.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` look-alike without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// `parking_lot::RwLock` look-alike without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_returns_the_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        *m.lock() = vec![4];
        assert_eq!(m.into_inner(), vec![4]);
    }
}
