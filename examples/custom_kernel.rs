//! Making your own code injectable: implement [`FaultTarget`] and reuse the
//! whole harness — injector, beam simulator and analysis — unchanged.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```
//!
//! The victim here is a small Jacobi solver for `A·x = b`. Its state surface
//! exposes the matrix, the two iterate buffers and a per-sweep control
//! block, exactly like the bundled Rodinia ports.

use phi_reliability::carolfi::fuel::Fuel;
use phi_reliability::carolfi::output::Output;
use phi_reliability::carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use phi_reliability::carolfi::{run_campaign, CampaignConfig};
use phi_reliability::sdc_analysis::pvf::OutcomeBreakdown;
use rand::Rng;

struct Jacobi {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    x: Vec<f64>,
    x_next: Vec<f64>,
    sweeps: u64,
    done: usize,
    total: usize,
}

impl Jacobi {
    fn new(n: usize, total_sweeps: usize) -> Self {
        let mut rng = phi_reliability::carolfi::rng::fork(0xAC0B, 0);
        let mut a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for i in 0..n {
            a[i * n + i] += n as f64; // diagonally dominant => Jacobi converges
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Jacobi { n, a, b, x: vec![0.0; n], x_next: vec![0.0; n], sweeps: 0, done: 0, total: total_sweeps }
    }
}

impl FaultTarget for Jacobi {
    fn name(&self) -> &'static str {
        "jacobi"
    }
    fn total_steps(&self) -> usize {
        self.total
    }
    fn steps_executed(&self) -> usize {
        self.done
    }

    fn step(&mut self) -> StepOutcome {
        let n = self.n;
        let mut fuel = Fuel::with_factor((n * n) as u64, 4.0);
        for i in 0..n {
            let mut sigma = 0.0;
            for j in 0..n {
                fuel.burn(1);
                if i != j {
                    sigma += self.a[i * n + j] * self.x[j];
                }
            }
            self.x_next[i] = (self.b[i] - sigma) / self.a[i * n + i];
        }
        std::mem::swap(&mut self.x, &mut self.x_next);
        self.sweeps += 1; // injectable; a corrupted sweep counter is benign
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        vec![
            Variable::from_slice(VarInfo::global("matrix_a", VarClass::Matrix, file!(), 1), &mut self.a),
            Variable::from_slice(VarInfo::global("rhs_b", VarClass::InputArray, file!(), 2), &mut self.b),
            Variable::from_slice(VarInfo::global("x", VarClass::Matrix, file!(), 3), &mut self.x),
            Variable::from_slice(VarInfo::global("x_scratch", VarClass::Buffer, file!(), 4), &mut self.x_next),
            Variable::from_scalar(VarInfo::local("sweeps", VarClass::ControlVariable, "jacobi_sweep", 0, file!(), 5), &mut self.sweeps),
        ]
    }

    fn output(&self) -> Output {
        Output::F64Grid { dims: [self.n, 1, 1], data: self.x.clone() }
    }
}

fn main() {
    let factory = || Jacobi::new(96, 30);

    // Golden run.
    let mut g = factory();
    while g.step() == StepOutcome::Continue {}
    let gold = g.output();

    // The fixed-point structure should make Jacobi highly fault-tolerant:
    // corrupted iterates are pulled back to the solution by the remaining
    // sweeps (the same self-healing the paper observes in HotSpot).
    let cfg = CampaignConfig { trials: 600, seed: 9, n_windows: 4, ..Default::default() };
    let campaign = run_campaign("jacobi", factory, &gold, &cfg);
    let bd = OutcomeBreakdown::of(&campaign.records);
    println!("custom Jacobi solver under injection ({} trials):", bd.trials);
    println!("  masked {:5.1}%   sdc {:5.1}%   due {:5.1}%", bd.masked_pct(), bd.sdc_pct(), bd.due_pct());
    println!("(iterative fixed-point solvers mask most data faults — compare Fig. 4.)");
}
