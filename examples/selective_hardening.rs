//! The paper's §6.1 workflow: grade code portions by criticality, then
//! harden selectively.
//!
//! ```text
//! cargo run --release --example selective_hardening
//! ```
//!
//! 1. An injection campaign on DGEMM identifies the critical variable
//!    classes (matrices vs the 228 × 9 thread-private loop controls).
//! 2. ABFT covers the matrices: the checksummed product corrects the
//!    single/line/random output patterns the beam produces.
//! 3. Duplication-with-comparison covers the control variables at a
//!    vanishing storage overhead.
//! 4. The measured DUE rate feeds the Young/Daly model: hardening the DUE
//!    sources lets the machine checkpoint less often.

use phi_reliability::carolfi::{run_campaign, CampaignConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::mitigation::abft::{AbftCheckedProduct, AbftOutcome};
use phi_reliability::mitigation::checkpoint::CheckpointModel;
use phi_reliability::mitigation::redundancy::{selective_overhead, Dwc};
use phi_reliability::sdc_analysis::fit::MachineProjection;
use phi_reliability::sdc_analysis::pvf::{by_class, event_share_by_class, PvfKind};
use rand::Rng;

fn main() {
    let bench = Benchmark::Dgemm;
    let size = SizeClass::Small;
    let gold = golden(bench, size);
    let cfg = CampaignConfig { trials: 1200, seed: 5, n_windows: bench.n_windows(), ..Default::default() };
    let campaign = run_campaign(bench.label(), || build(bench, size), &gold, &cfg);

    // --- 1. Criticality analysis -----------------------------------------
    println!("Step 1 — which portions of {bench} are critical?");
    let sdc = by_class(&campaign.records, PvfKind::Sdc);
    let share = event_share_by_class(&campaign.records, PvfKind::Sdc);
    for (class, pvf) in &sdc.groups {
        println!(
            "  {:14} {:5.1}% SDC when hit, carrying {:4.1}% of all SDCs",
            class.label(),
            pvf.percent(),
            100.0 * share.get(class).copied().unwrap_or(0.0)
        );
    }

    // --- 2. ABFT for the matrices -----------------------------------------
    println!("\nStep 2 — ABFT over the matrix product (corrects single/line/random):");
    let n = 64;
    let mut rng = phi_reliability::carolfi::rng::fork(7, 0);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut corrected = 0;
    let trials = 100;
    for t in 0..trials {
        let mut p = AbftCheckedProduct::multiply(&a, &b, n);
        // A beam-style line corruption: 8 consecutive elements of one row.
        let row = (t * 7) % n;
        let col = (t * 13) % (n - 8);
        for l in 0..8 {
            p.c[row * n + col + l] += 1.0 + l as f64;
        }
        if matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. }) {
            corrected += 1;
        }
    }
    println!("  corrected {corrected}/{trials} injected line corruptions");

    // --- 3. DWC for the loop controls --------------------------------------
    println!("\nStep 3 — duplication-with-comparison for the loop controls:");
    let mut kb = Dwc::new(3u64);
    *kb.copies_mut().0 ^= 1 << 40; // a strike on one copy
    println!("  corrupted control read: {:?} (detected instead of silently corrupting a panel)", kb.read());
    let overhead = selective_overhead(228 * 9 * 8, 3 * 256 * 256 * 8, 2);
    println!("  storage overhead of protecting all 228×9 controls: {:.3}% of the working set", overhead * 100.0);

    // --- 4. Checkpoint-interval relaxation --------------------------------
    println!("\nStep 4 — what the DUE rate means for checkpointing:");
    let due_frac = campaign.due_fraction();
    let per_device_fit = 150.0 * due_frac; // illustrative scaling of the beam DUE FIT
    let machine = MachineProjection::trinity(per_device_fit.max(1.0));
    let model = CheckpointModel::new(machine.mtbf_hours(), 0.25, 0.1);
    let hardened = model.with_due_scaled(0.5); // §6: halve the DUE sources
    println!("  machine MTBF {:.0} h -> optimal checkpoint interval {:.1} h (overhead x{:.4})", model.mtbf, model.young_interval(), model.optimal_overhead());
    println!("  after hardening the DUE sources: interval {:.1} h (overhead x{:.4})", hardened.young_interval(), hardened.optimal_overhead());
}
