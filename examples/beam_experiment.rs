//! A miniature neutron-beam experiment on LUD (paper §4).
//!
//! ```text
//! cargo run --release --example beam_experiment
//! ```
//!
//! Simulates strike-executions through the Knights Corner device model —
//! SECDED-protected caches, unprotected pipeline/dispatch/ring resources —
//! and reports what the real beam campaign reports: SDC and DUE FIT at sea
//! level with confidence intervals, the spatial-pattern split of the
//! corrupted outputs, equivalent natural exposure, and the Trinity-scale
//! projection.

use phi_reliability::beamsim::{campaign::engine_for, run_beam_campaign, BeamConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::sdc_analysis::fit::MachineProjection;
use phi_reliability::sdc_analysis::spatial;

fn main() {
    let bench = Benchmark::Lud;
    let size = SizeClass::Small;
    let gold = golden(bench, size);

    let cfg = BeamConfig { strikes: 3000, seed: 3, n_windows: bench.n_windows(), engine: engine_for(bench.label()), ..Default::default() };
    let campaign = run_beam_campaign(bench.label(), || build(bench, size), &gold, &cfg);

    let sdc = campaign.fit_sdc();
    let due = campaign.fit_due();
    println!("{bench} under the beam: {} strike-executions", campaign.records.len());
    println!("  equivalent natural exposure: {:.1} years", campaign.natural_hours() / (24.0 * 365.0));
    let iv = sdc.fit_interval();
    println!("  SDC FIT = {:6.1}  (95% CI {:5.1}–{:5.1}, {} events)", sdc.fit(), iv.lo, iv.hi, sdc.events);
    println!("  DUE FIT = {:6.1}  ({} events)", due.fit(), due.events);
    println!("  ECC corrected {} strikes; {} machine-check aborts", campaign.mca.corrected_count(), campaign.mca.uncorrectable_count());

    println!("  spatial patterns of the corrupted outputs:");
    for (pattern, n) in spatial::histogram(campaign.sdc_summaries()) {
        println!("    {:7} {:4}", pattern.label(), n);
    }

    let trinity = MachineProjection::trinity(sdc.fit());
    println!("  a 19,000-board machine at sea level would see one {bench} SDC every {:.1} days", trinity.mtbf_days());
}
