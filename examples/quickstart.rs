//! Quickstart: inject 400 faults into DGEMM and classify the outcomes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the minimal CAROL-FI workflow from the paper (§5–§6): build a
//! benchmark, compute its golden output, run an injection campaign cycling
//! the four fault models, and read the Masked/SDC/DUE split.

use phi_reliability::carolfi::{run_campaign, CampaignConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::sdc_analysis::pvf::{by_model, OutcomeBreakdown, PvfKind};

fn main() {
    let bench = Benchmark::Dgemm;
    let size = SizeClass::Small;

    // 1. A fault-free run produces the golden output.
    let gold = golden(bench, size);

    // 2. Run the campaign: each trial interrupts a fresh execution at a
    //    random step, corrupts one variable picked by the GDB-style
    //    thread → frame → variable walk, and resumes under a watchdog.
    let cfg = CampaignConfig { trials: 400, seed: 1, n_windows: bench.n_windows(), ..Default::default() };
    let campaign = run_campaign(bench.label(), || build(bench, size), &gold, &cfg);

    // 3. Outcome breakdown (the paper's Fig. 4 for this benchmark).
    let bd = OutcomeBreakdown::of(&campaign.records);
    println!("{bench}: {} injections", bd.trials);
    println!("  masked {:5.1}%   sdc {:5.1}%   due {:5.1}%", bd.masked_pct(), bd.sdc_pct(), bd.due_pct());

    // 4. Per-fault-model SDC vulnerability (Fig. 5a for this benchmark).
    let sdc = by_model(&campaign.records, PvfKind::Sdc);
    println!("  SDC PVF by fault model:");
    for (model, pvf) in &sdc.groups {
        let iv = pvf.interval();
        println!("    {:7} {:5.1}%  (95% CI {:4.1}–{:4.1}%)", model.label(), pvf.percent(), iv.lo * 100.0, iv.hi * 100.0);
    }
}
