//! End-to-end tests for the durable campaign store (phi-store +
//! orchestrators): a sharded, journal-backed campaign must aggregate
//! bit-identically to the plain single-shot run, no matter how many shards
//! it uses or how often it is killed and resumed along the way.

use phi_reliability::carolfi::campaign::execute_trial;
use phi_reliability::carolfi::record::TrialRecord;
use phi_reliability::carolfi::{
    run_campaign, run_campaign_isolated, run_campaign_stored, CampaignConfig, FaultTarget, IsolateConfig, StoreConfig,
    StoredRun,
};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::store::{Journal, JournalEntry};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/test-store-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_records(a: &[TrialRecord], b: &[TrialRecord]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.trial, y.trial);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.mechanism, y.mechanism);
        assert_eq!(x.inject_step, y.inject_step);
        assert_eq!(x.window, y.window);
    }
}

#[test]
fn sharded_campaign_equals_single_shot_for_any_shard_count() {
    let b = Benchmark::Hotspot;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 60, seed: 9, n_windows: b.n_windows(), ..Default::default() };
    let single = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

    for shards in [1usize, 4, 7] {
        let mut sc = StoreConfig::new(tmp(&format!("shards-{shards}")));
        sc.shards = shards;
        let stored = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
            .unwrap()
            .expect_complete();
        assert_same_records(&single.records, &stored.records);
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_aggregate() {
    let b = Benchmark::Nw;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 90, seed: 13, n_windows: b.n_windows(), ..Default::default() };
    let uninterrupted = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

    // Kill the campaign every 25 trials (budget exhaustion takes the same
    // pause path a supervisor shutdown does: journal flushed, cursors
    // checkpointed) and resume until it completes.
    let mut sc = StoreConfig::new(tmp("interrupt"));
    sc.shards = 4;
    sc.checkpoint_every = 8;
    sc.budget = Some(25);
    let mut rounds = 0;
    let stored = loop {
        rounds += 1;
        assert!(rounds < 20, "campaign never completed");
        match run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap() {
            StoredRun::Complete(c) => break c,
            StoredRun::Paused { completed, total } => {
                assert!(completed < total as u64);
                sc.resume = true;
            }
        }
    };
    assert!(rounds >= 4, "90 trials at 25/invocation should pause at least 3 times, took {rounds} rounds");
    assert_same_records(&uninterrupted.records, &stored.records);
}

#[test]
fn resuming_a_complete_campaign_reruns_nothing() {
    let b = Benchmark::Clamr;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 40, seed: 21, n_windows: b.n_windows(), ..Default::default() };
    let dir = tmp("complete-resume");

    let mut sc = StoreConfig::new(dir.clone());
    sc.shards = 5;
    let first = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
        .unwrap()
        .expect_complete();

    let scan = Journal::scan(&dir).unwrap();
    let done = scan.entries.iter().filter(|e| matches!(e, JournalEntry::ShardDone { .. })).count();
    assert_eq!(done, 5, "every shard seals with a ShardDone");

    // A resume of a finished store must replay from the journal without
    // executing (or re-journaling) a single trial.
    sc.resume = true;
    let second = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
        .unwrap()
        .expect_complete();
    assert_same_records(&first.records, &second.records);
    let rescan = Journal::scan(&dir).unwrap();
    assert_eq!(rescan.entries.len(), scan.entries.len(), "no new entries on a no-op resume");
}

// --- SIGKILL + resume round trip for the process-isolated backend ----------
//
// Three processes cooperate, all of them this test binary:
//  * the outer test spawns a child running `kill_resume_child_entry`
//    (selected by env var), waits for the journal to accumulate trials and
//    SIGKILLs it mid-campaign;
//  * the child supervises an isolated campaign whose warden re-execs the
//    binary a third time as `kill_resume_worker_entry` (selected by the
//    warden socket env), with a per-trial sleep so the kill reliably lands
//    mid-run;
//  * the outer test then resumes the campaign in-process (isolated again)
//    and pins the aggregate against an uninterrupted in-memory run.

const KR_BENCH: Benchmark = Benchmark::Hotspot;
const KR_TRIALS: usize = 80;
const KR_SEED: u64 = 77;
const KR_SLEEP_MS: u64 = 4;
const KR_DIR_ENV: &str = "PHI_TEST_KILL_RESUME_DIR";

fn kr_cfg() -> CampaignConfig {
    CampaignConfig { trials: KR_TRIALS, seed: KR_SEED, workers: 2, n_windows: KR_BENCH.n_windows(), ..Default::default() }
}

fn kr_iso() -> IsolateConfig {
    let mut iso = IsolateConfig::new(
        std::env::current_exe().expect("test binary path"),
        vec!["kill_resume_worker_entry".into(), "--exact".into(), "--test-threads=1".into(), "--nocapture".into()],
        String::new(),
    );
    iso.backoff_base = std::time::Duration::from_millis(1);
    iso.backoff_cap = std::time::Duration::from_millis(10);
    iso
}

/// Warden worker: serves paced kernel trials (no-op in an ordinary run).
#[test]
fn kill_resume_worker_entry() {
    if !phi_reliability::carolfi::warden::worker_active() {
        return;
    }
    let cfg = kr_cfg();
    let g = golden(KR_BENCH, SizeClass::Test);
    let total_steps = build(KR_BENCH, SizeClass::Test).total_steps().max(1);
    let result = phi_reliability::carolfi::warden::serve(|trial, _attempt| {
        // Pace the campaign so the outer test's SIGKILL lands mid-run.
        std::thread::sleep(std::time::Duration::from_millis(KR_SLEEP_MS));
        let mut target = build(KR_BENCH, SizeClass::Test);
        execute_trial(KR_BENCH.label(), &mut target, &g, &cfg, total_steps, trial).0
    });
    std::process::exit(if result.is_ok() { 0 } else { 1 });
}

/// Victim of the SIGKILL: supervises the isolated campaign (no-op unless
/// spawned by the outer test with the journal dir in the environment).
#[test]
fn kill_resume_child_entry() {
    let Some(dir) = std::env::var_os(KR_DIR_ENV) else { return };
    let mut sc = StoreConfig::new(PathBuf::from(dir));
    sc.shards = 2;
    sc.checkpoint_every = 4;
    let total_steps = build(KR_BENCH, SizeClass::Test).total_steps().max(1);
    run_campaign_isolated(KR_BENCH.label(), total_steps, &kr_cfg(), &sc, &kr_iso()).expect("child campaign");
}

#[test]
fn sigkilled_isolated_campaign_resumes_bit_identically() {
    let uninterrupted = {
        let g = golden(KR_BENCH, SizeClass::Test);
        run_campaign(KR_BENCH.label(), || build(KR_BENCH, SizeClass::Test), &g, &kr_cfg())
    };
    let dir = tmp("kill-resume-isolated");

    let mut child = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["kill_resume_child_entry", "--exact", "--test-threads=1", "--nocapture"])
        .env(KR_DIR_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn child campaign");

    // Wait until the journal holds a meaningful prefix, then SIGKILL the
    // supervisor mid-campaign. The per-trial pacing keeps the campaign far
    // from done at that point.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let journaled = loop {
        assert!(std::time::Instant::now() < deadline, "child campaign never journaled any trials");
        if let Ok(status) = child.try_wait() {
            assert!(status.is_none(), "child campaign finished before it could be killed; increase KR_TRIALS");
        }
        let trials = Journal::scan(&dir)
            .map(|s| s.entries.iter().filter(|e| matches!(e, JournalEntry::Trial { .. })).count())
            .unwrap_or(0);
        if trials >= 8 {
            break trials;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    child.kill().expect("SIGKILL child");
    let _ = child.wait();
    assert!(journaled < KR_TRIALS, "kill landed after the campaign finished");

    // Resume the same journal, isolated again, from this process. The
    // aggregate must be bit-identical to the uninterrupted in-memory run —
    // the SIGKILL cost at most the in-flight (unjournaled) trials.
    let mut sc = StoreConfig::new(dir);
    sc.shards = 2;
    sc.checkpoint_every = 4;
    sc.resume = true;
    let total_steps = build(KR_BENCH, SizeClass::Test).total_steps().max(1);
    let resumed = run_campaign_isolated(KR_BENCH.label(), total_steps, &kr_cfg(), &sc, &kr_iso())
        .expect("resume after SIGKILL")
        .expect_complete();
    assert_eq!(uninterrupted.records.len(), resumed.records.len());
    for (x, y) in uninterrupted.records.iter().zip(&resumed.records) {
        assert_eq!(
            serde_json::to_string(x).unwrap(),
            serde_json::to_string(y).unwrap(),
            "trial {} differs after kill+resume",
            x.trial
        );
    }
}

#[test]
fn opening_an_existing_store_without_resume_is_refused() {
    let b = Benchmark::Lud;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 10, seed: 3, n_windows: b.n_windows(), ..Default::default() };
    let mut sc = StoreConfig::new(tmp("no-clobber"));
    sc.shards = 2;
    run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap().expect_complete();

    let err = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap_err();
    assert!(err.to_string().contains("--resume"), "error should point at --resume: {err}");

    // And a resume under a different campaign identity is refused too —
    // merging two campaigns' records would be silent corruption.
    sc.resume = true;
    let other = CampaignConfig { trials: 10, seed: 4, n_windows: b.n_windows(), ..Default::default() };
    let err = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &other, &sc).unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");
}
