//! End-to-end tests for the durable campaign store (phi-store +
//! orchestrators): a sharded, journal-backed campaign must aggregate
//! bit-identically to the plain single-shot run, no matter how many shards
//! it uses or how often it is killed and resumed along the way.

use phi_reliability::carolfi::record::TrialRecord;
use phi_reliability::carolfi::{run_campaign, run_campaign_stored, CampaignConfig, StoreConfig, StoredRun};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::store::{Journal, JournalEntry};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/test-store-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_records(a: &[TrialRecord], b: &[TrialRecord]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.trial, y.trial);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.mechanism, y.mechanism);
        assert_eq!(x.inject_step, y.inject_step);
        assert_eq!(x.window, y.window);
    }
}

#[test]
fn sharded_campaign_equals_single_shot_for_any_shard_count() {
    let b = Benchmark::Hotspot;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 60, seed: 9, n_windows: b.n_windows(), ..Default::default() };
    let single = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

    for shards in [1usize, 4, 7] {
        let mut sc = StoreConfig::new(tmp(&format!("shards-{shards}")));
        sc.shards = shards;
        let stored = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
            .unwrap()
            .expect_complete();
        assert_same_records(&single.records, &stored.records);
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_aggregate() {
    let b = Benchmark::Nw;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 90, seed: 13, n_windows: b.n_windows(), ..Default::default() };
    let uninterrupted = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

    // Kill the campaign every 25 trials (budget exhaustion takes the same
    // pause path a supervisor shutdown does: journal flushed, cursors
    // checkpointed) and resume until it completes.
    let mut sc = StoreConfig::new(tmp("interrupt"));
    sc.shards = 4;
    sc.checkpoint_every = 8;
    sc.budget = Some(25);
    let mut rounds = 0;
    let stored = loop {
        rounds += 1;
        assert!(rounds < 20, "campaign never completed");
        match run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap() {
            StoredRun::Complete(c) => break c,
            StoredRun::Paused { completed, total } => {
                assert!(completed < total as u64);
                sc.resume = true;
            }
        }
    };
    assert!(rounds >= 4, "90 trials at 25/invocation should pause at least 3 times, took {rounds} rounds");
    assert_same_records(&uninterrupted.records, &stored.records);
}

#[test]
fn resuming_a_complete_campaign_reruns_nothing() {
    let b = Benchmark::Clamr;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 40, seed: 21, n_windows: b.n_windows(), ..Default::default() };
    let dir = tmp("complete-resume");

    let mut sc = StoreConfig::new(dir.clone());
    sc.shards = 5;
    let first = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
        .unwrap()
        .expect_complete();

    let scan = Journal::scan(&dir).unwrap();
    let done = scan.entries.iter().filter(|e| matches!(e, JournalEntry::ShardDone { .. })).count();
    assert_eq!(done, 5, "every shard seals with a ShardDone");

    // A resume of a finished store must replay from the journal without
    // executing (or re-journaling) a single trial.
    sc.resume = true;
    let second = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
        .unwrap()
        .expect_complete();
    assert_same_records(&first.records, &second.records);
    let rescan = Journal::scan(&dir).unwrap();
    assert_eq!(rescan.entries.len(), scan.entries.len(), "no new entries on a no-op resume");
}

#[test]
fn opening_an_existing_store_without_resume_is_refused() {
    let b = Benchmark::Lud;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 10, seed: 3, n_windows: b.n_windows(), ..Default::default() };
    let mut sc = StoreConfig::new(tmp("no-clobber"));
    sc.shards = 2;
    run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap().expect_complete();

    let err = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap_err();
    assert!(err.to_string().contains("--resume"), "error should point at --resume: {err}");

    // And a resume under a different campaign identity is refused too —
    // merging two campaigns' records would be silent corruption.
    sc.resume = true;
    let other = CampaignConfig { trials: 10, seed: 4, n_windows: b.n_windows(), ..Default::default() };
    let err = run_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &other, &sc).unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");
}
