//! End-to-end crash drill for distributed campaigns: two executors and a
//! raw-protocol straggler drive a real kernel injection campaign through a
//! coordinator that is deliberately abandoned mid-run (the SIGKILL
//! simulation hook — writers leaked, nothing sealed), then resumed on a
//! fresh port from its write-ahead ledger. The merged aggregate must come
//! out byte-identical to the plain single-host `run_campaign` with the
//! same seed — distribution, straggler re-dispatch and coordinator crash
//! recovery are pure placement, invisible in the science.

use phi_reliability::carolfi::campaign::execute_trial;
use phi_reliability::carolfi::dist::{CoordMsg, ExecutorMsg};
use phi_reliability::carolfi::warden::{read_frame, write_frame};
use phi_reliability::carolfi::{
    run_campaign, run_coordinator, run_executor, CampaignConfig, ConnectTarget, CoordConfig, ExecutorConfig,
};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::store::journal::FORMAT_VERSION;
use phi_reliability::store::{CampaignMeta, Journal, ShardProgress};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

const B: Benchmark = Benchmark::Hotspot;
const TRIALS: usize = 48;
const SHARDS: usize = 3;
const SEED: u64 = 2017;
/// Trials merged before the first coordinator incarnation abandons —
/// mid-campaign, with every healthy lease still open.
const CRASH_AFTER: u64 = 16;

fn ccfg() -> CampaignConfig {
    CampaignConfig { trials: TRIALS, seed: SEED, n_windows: B.n_windows(), ..Default::default() }
}

fn meta() -> CampaignMeta {
    CampaignMeta {
        kind: "inject".into(),
        benchmark: B.label().into(),
        seed: SEED,
        trials: TRIALS,
        shards: SHARDS,
        n_windows: B.n_windows(),
        version: FORMAT_VERSION,
    }
}

/// The canonical per-trial runner — the exact single-host trial path, pure
/// in the global index, so any executor computes identical bytes.
fn runner() -> impl FnMut(u64) -> String {
    let g = golden(B, SizeClass::Test);
    let cfg = ccfg();
    let total_steps = build(B, SizeClass::Test).total_steps().max(1);
    move |global: u64| {
        let mut target = build(B, SizeClass::Test);
        let (record, _) = execute_trial(B.label(), &mut target, &g, &cfg, total_steps, global as usize);
        serde_json::to_string(&record).expect("trial records serialize")
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/test-dist-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Atomic address-file update, as `phi-coord --addr-file` does: executors
/// re-read it on every reconnect, so a restarted coordinator on a fresh
/// port is found the moment the rename lands.
fn write_addr(path: &Path, addr: &str) {
    let staging = path.with_extension("tmp");
    std::fs::write(&staging, addr).unwrap();
    std::fs::rename(&staging, path).unwrap();
}

fn roundtrip_raw(stream: &mut TcpStream, msg: &ExecutorMsg) -> CoordMsg {
    write_frame(stream, msg).unwrap();
    read_frame(stream).unwrap()
}

#[test]
fn crashed_coordinator_and_dead_executor_resume_to_the_single_host_aggregate() {
    // The ground truth this whole drill must reproduce byte-for-byte.
    let g = golden(B, SizeClass::Test);
    let reference = run_campaign(B.label(), || build(B, SizeClass::Test), &g, &ccfg());
    let expected: Vec<String> =
        reference.records.iter().map(|r| serde_json::to_string(r).expect("records serialize")).collect();
    assert_eq!(expected.len(), TRIALS);

    let root = tmp("crash-drill");
    let coord_dir = root.join("coord");
    let addr_file = root.join("coord.addr");

    // Coordinator incarnation 1: abandon (leaked writers, no seal — the
    // in-process equivalent of kill -9) once CRASH_AFTER trials merged.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    write_addr(&addr_file, &listener.local_addr().unwrap().to_string());
    let mut cfg1 = CoordConfig::new(&coord_dir, meta(), "");
    cfg1.lease_timeout = Duration::from_millis(400);
    cfg1.stop_after_merged = Some(CRASH_AFTER);
    let coord1 = std::thread::spawn(move || run_coordinator(listener, &cfg1).unwrap());

    // A doomed executor leases a shard, streams exactly one trial, then its
    // socket dies — an executor killed mid-range. Its lease either rots out
    // (straggler expiry) or is carried Active into the crash ledger; both
    // paths end in re-dispatch.
    let addr = std::fs::read_to_string(&addr_file).unwrap();
    {
        let mut doomed = TcpStream::connect(addr.trim()).unwrap();
        let CoordMsg::Welcome { .. } = roundtrip_raw(&mut doomed, &ExecutorMsg::Hello { name: "doomed".into(), pid: 1 })
        else {
            panic!("expected Welcome");
        };
        let CoordMsg::Lease { lease, shard, start, .. } = roundtrip_raw(&mut doomed, &ExecutorMsg::LeaseRequest) else {
            panic!("expected a lease");
        };
        let payload = runner()(start);
        let reply = roundtrip_raw(&mut doomed, &ExecutorMsg::Trial { lease, shard, seq: 0, payload });
        assert_eq!(reply, CoordMsg::Ack);
        // dropped here: connection reset mid-range, lease left dangling
    }

    // Two healthy executors, found through the address file so they follow
    // the coordinator across its restart.
    let executors: Vec<_> = ["ex-a", "ex-b"]
        .into_iter()
        .map(|name| {
            let ecfg = ExecutorConfig::new(name, root.join(name), ConnectTarget::File(addr_file.clone()));
            std::thread::spawn(move || run_executor(&ecfg, |_, _| runner()).unwrap())
        })
        .collect();

    let s1 = coord1.join().unwrap();
    assert!(s1.abandoned, "incarnation 1 must die by the crash hook");
    assert_eq!(s1.merged, CRASH_AFTER, "the crash hook fires on the merge that reaches the cap");

    // Incarnation 2: fresh port (the kill left the old one behind), resume
    // from journal + write-ahead ledger, rewrite the address file.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    write_addr(&addr_file, &listener.local_addr().unwrap().to_string());
    let mut cfg2 = CoordConfig::new(&coord_dir, meta(), "");
    cfg2.resume = true;
    cfg2.lease_timeout = Duration::from_millis(400);
    let s2 = run_coordinator(listener, &cfg2).unwrap();

    assert!(!s2.abandoned);
    assert_eq!(s1.merged + s2.merged, TRIALS as u64, "every trial merged exactly once across incarnations");
    assert!(
        s1.leases_expired + s2.leases_expired >= 1,
        "the dead executor's lease must expire (straggler timeout or crash reconcile): {s1:?} / {s2:?}"
    );
    assert!(
        s1.redispatched + s2.redispatched >= 1,
        "the dead executor's shard must be re-dispatched: {s1:?} / {s2:?}"
    );

    for (name, handle) in ["ex-a", "ex-b"].iter().zip(executors) {
        let summary = handle.join().unwrap();
        assert!(summary.leases >= 1, "{name} never got a lease");
    }

    // The decisive check: the merged central journal replays to exactly the
    // single-host aggregate, byte for byte.
    let scan = Journal::scan(&coord_dir).unwrap();
    let progress = ShardProgress::replay(SHARDS, &scan.entries).unwrap();
    assert!(progress.all_done(), "every shard sealed after resume");
    let merged: Vec<String> = progress.shards.iter().flat_map(|s| s.payloads.clone()).collect();
    assert_eq!(merged, expected, "distributed aggregate diverged from the single-host run");
}
