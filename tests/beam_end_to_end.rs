//! End-to-end integration tests for the beam-experiment pipeline:
//! device model → strike effects → kernels → FIT/spatial analysis.

use phi_reliability::beamsim::{campaign::engine_for, run_beam_campaign, BeamCampaign, BeamConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::sdc_analysis::spatial::{self, SpatialPattern};
use phi_reliability::sdc_analysis::tolerance::{paper_tolerances, ToleranceCurve};

fn mini_beam(b: Benchmark, strikes: usize, seed: u64) -> BeamCampaign {
    let g = golden(b, SizeClass::Test);
    let cfg = BeamConfig { strikes, seed, n_windows: b.n_windows(), engine: engine_for(b.label()), ..Default::default() };
    run_beam_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg)
}

#[test]
fn all_beam_benchmarks_produce_finite_fit() {
    for b in Benchmark::BEAM {
        let c = mini_beam(b, 500, 71);
        let sdc = c.fit_sdc().fit();
        let due = c.fit_due().fit();
        assert!(sdc.is_finite() && sdc >= 0.0, "{b}");
        assert!(due.is_finite() && due >= 0.0, "{b}");
        assert!(c.error_rate_per_strike() < 0.6, "{b}: too many strikes become errors");
    }
}

#[test]
fn cubic_patterns_appear_only_for_lavamd() {
    // Paper §4.3: "LavaMD is the only benchmark working with three
    // dimensional simulations, it is the only one that can exhibit a cubic
    // error pattern."
    for b in Benchmark::BEAM {
        let c = mini_beam(b, 1200, 73);
        let hist = spatial::histogram(c.sdc_summaries());
        let cubic = hist.get(&SpatialPattern::Cubic).copied().unwrap_or(0);
        if b == Benchmark::Lavamd {
            assert!(cubic > 0, "lavamd should show cubic patterns");
        } else {
            assert_eq!(cubic, 0, "{b} cannot be cubic (2-D output)");
        }
    }
}

#[test]
fn multi_element_sdcs_dominate_for_stencil_codes() {
    // Paper §2.1/§4.3: well under half of corrupted executions have a
    // single wrong element; iterative codes spread errors.
    for b in [Benchmark::Hotspot, Benchmark::Clamr] {
        let c = mini_beam(b, 1500, 79);
        let summaries = c.sdc_summaries();
        if summaries.len() < 20 {
            continue;
        }
        let single = summaries.iter().filter(|s| s.wrong == 1).count();
        assert!(
            (single as f64) < 0.3 * summaries.len() as f64,
            "{b}: {single}/{} single-element SDCs",
            summaries.len()
        );
    }
}

#[test]
fn ecc_absorbs_cache_strikes() {
    let c = mini_beam(Benchmark::Dgemm, 1000, 83);
    // With ~50 of 100 area weight on SECDED caches and a low double-bit
    // rate, corrected events must dominate machine checks.
    assert!(c.mca.corrected_count() > 10 * c.mca.uncorrectable_count().max(1) / 2);
}

#[test]
fn tolerance_curves_are_monotone_for_every_benchmark() {
    for b in Benchmark::BEAM {
        let c = mini_beam(b, 800, 89);
        let summaries = c.sdc_summaries();
        let curve = ToleranceCurve::from_summaries(b.label(), summaries.iter().copied(), &paper_tolerances());
        let red = curve.fit_reduction_percent();
        for w in red.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{b}: non-monotone {red:?}");
        }
    }
}

#[test]
fn beam_campaigns_are_deterministic() {
    let a = mini_beam(Benchmark::Hotspot, 300, 97);
    let b = mini_beam(Benchmark::Hotspot, 300, 97);
    assert_eq!(a.fit_sdc().events, b.fit_sdc().events);
    assert_eq!(a.fit_due().events, b.fit_due().events);
}

#[test]
fn ecc_off_ablation_raises_the_error_rate() {
    // DESIGN.md ablation: "FIT contribution of protected arrays".
    use phi_reliability::phidev::resources::ResourceInventory;
    use phi_reliability::phidev::strike::{StrikeEngine, StrikeTuning};
    let g = golden(Benchmark::Lud, SizeClass::Test);
    let on = mini_beam(Benchmark::Lud, 1200, 101);
    let cfg_off = BeamConfig {
        strikes: 1200,
        seed: 101,
        n_windows: 4,
        engine: StrikeEngine::new(ResourceInventory::knc3120a_ecc_off(), StrikeTuning::default()),
        ..Default::default()
    };
    let off = run_beam_campaign("lud", || build(Benchmark::Lud, SizeClass::Test), &g, &cfg_off);
    assert!(
        off.error_rate_per_strike() > on.error_rate_per_strike(),
        "ECC off ({}) must beat ECC on ({})",
        off.error_rate_per_strike(),
        on.error_rate_per_strike()
    );
}
