//! Integration tests tying the mitigation techniques to the campaign
//! machinery: the §6.1 "measure, then harden selectively" loop.

use phi_reliability::carolfi::{run_campaign, CampaignConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::mitigation::abft::{AbftCheckedProduct, AbftOutcome};
use phi_reliability::mitigation::checkpoint::CheckpointModel;
use phi_reliability::mitigation::parity::ParityWord;
use phi_reliability::mitigation::residue::ResidueChecked;
use phi_reliability::sdc_analysis::fit::MachineProjection;
use rand::Rng;

#[test]
fn abft_corrects_the_beam_style_dgemm_patterns() {
    // Paper §4.3: "for the Xeon Phi most of the observed SDCs in DGEMM could
    // be corrected by ABFT" — single, line and scattered-random patterns.
    let n = 32;
    let mut rng = phi_reliability::carolfi::rng::fork(0xAB, 0);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut corrected = 0;
    let trials = 60;
    for t in 0..trials {
        let mut p = AbftCheckedProduct::multiply(&a, &b, n);
        match t % 3 {
            0 => p.c[(t * 5) % (n * n)] += 2.0, // single
            1 => {
                let row = (t * 3) % n; // vector-lane line
                for l in 0..8 {
                    p.c[row * n + l] += 1.0 + l as f64;
                }
            }
            _ => {
                // scattered: one error per row/column
                p.c[((t % n) * n) + (t * 7) % n] += 3.0;
            }
        }
        if matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. }) {
            corrected += 1;
        }
    }
    assert_eq!(corrected, trials);
}

#[test]
fn parity_catches_the_single_model_on_nw_style_words() {
    // §6.1: "For NW, a simple parity would detect most SDCs since single
    // faults are more critical than the others types of faults."
    let mut rng = phi_reliability::carolfi::rng::fork(0x42u64, 1);
    let mut detected = 0;
    let trials = 500;
    for _ in 0..trials {
        let v: u64 = rng.gen();
        let mut w = ParityWord::new(v);
        let bit = rng.gen_range(0..64);
        w.value ^= 1u64 << bit; // the Single fault model
        if !w.check() {
            detected += 1;
        }
    }
    assert_eq!(detected, trials, "parity must catch every single-bit fault");
}

#[test]
fn residue_checking_survives_a_nw_like_dp_recurrence() {
    // Run a miniature integer DP with residue-checked arithmetic; a clean
    // run must never raise a false alarm, and value corruption must trip it.
    let n = 24;
    let mut cells: Vec<ResidueChecked<15>> = vec![ResidueChecked::new(0); n * n];
    for i in 1..n {
        for j in 1..n {
            let up = cells[(i - 1) * n + j];
            let left = cells[i * n + (j - 1)];
            let sum = up.add(left).add(ResidueChecked::new(((i * j) % 7) as i64 - 3));
            assert!(sum.check(), "false alarm at ({i},{j})");
            cells[i * n + j] = sum;
        }
    }
    // Corrupt one cell's value (not its residue): detected on check.
    cells[5 * n + 5].value ^= 1 << 13;
    assert!(!cells[5 * n + 5].check());
}

#[test]
fn measured_due_rates_feed_the_checkpoint_model() {
    // Close the loop: campaign DUE fraction → machine MTBF → Daly interval.
    let b = Benchmark::Lud;
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials: 400, seed: 113, n_windows: b.n_windows(), ..Default::default() };
    let campaign = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);
    let due_fraction = campaign.due_fraction();
    assert!(due_fraction > 0.0, "LUD must show DUEs");

    // Illustrative absolute scale: a 50-FIT DUE device.
    let machine = MachineProjection::trinity(50.0 * due_fraction / due_fraction); // 50 FIT
    let model = CheckpointModel::new(machine.mtbf_hours(), 0.25, 0.1);
    let hardened = model.with_due_scaled(1.0 - due_fraction.min(0.9));
    assert!(hardened.young_interval() > model.young_interval());
    assert!(hardened.optimal_overhead() < model.optimal_overhead());
}

#[test]
fn dwc_protected_controls_convert_sdc_to_detection() {
    use phi_reliability::mitigation::redundancy::Dwc;
    // Emulate the §6 DGEMM recommendation: wrap the nine per-thread loop
    // controls in DWC; any single-copy corruption becomes a detection.
    let mut controls: Vec<Dwc<u64>> = (0..9 * 8).map(|i| Dwc::new(i as u64)).collect();
    let mut rng = phi_reliability::carolfi::rng::fork(0xD2C, 0);
    let mut detections = 0;
    for _ in 0..100 {
        let victim = rng.gen_range(0..controls.len());
        let bit = rng.gen_range(0..64);
        if rng.gen_bool(0.5) {
            *controls[victim].copies_mut().0 ^= 1u64 << bit;
        } else {
            *controls[victim].copies_mut().1 ^= 1u64 << bit;
        }
        if controls[victim].read().is_err() {
            detections += 1;
            let fixed = victim as u64;
            controls[victim].write(fixed);
        }
    }
    assert_eq!(detections, 100);
}
