//! End-to-end integration tests for the CAROL-FI injection pipeline:
//! kernels → injector → records → analysis, spanning every workspace crate.

use phi_reliability::carolfi::record::{read_log, write_log};
use phi_reliability::carolfi::{run_campaign, Campaign, CampaignConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::sdc_analysis::pvf::{by_model, by_window, OutcomeBreakdown, PvfKind};

fn mini_campaign(b: Benchmark, trials: usize, seed: u64) -> Campaign {
    let g = golden(b, SizeClass::Test);
    let cfg = CampaignConfig { trials, seed, n_windows: b.n_windows(), ..Default::default() };
    run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg)
}

#[test]
fn every_benchmark_survives_a_campaign() {
    for b in Benchmark::ALL {
        let c = mini_campaign(b, 120, 17);
        assert_eq!(c.records.len(), 120, "{b}");
        let (m, s, d) = c.outcome_counts();
        assert_eq!(m + s + d, 120, "{b}");
        // Every benchmark must show at least some masking and some harm.
        assert!(m > 0, "{b}: nothing masked");
        assert!(s + d > 0, "{b}: nothing harmful in 120 trials");
    }
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let a = mini_campaign(Benchmark::Hotspot, 80, 5);
    let b = mini_campaign(Benchmark::Hotspot, 80, 5);
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.inject_step, y.inject_step);
    }
    let c = mini_campaign(Benchmark::Hotspot, 80, 6);
    let differs = a.records.iter().zip(&c.records).any(|(x, y)| x.outcome != y.outcome || x.inject_step != y.inject_step);
    assert!(differs, "different seeds must differ");
}

#[test]
fn dgemm_is_the_least_masked_benchmark() {
    // Paper Fig. 4: "the majority of injected faults are masked during
    // computation (except for DGEMM)".
    let masked: Vec<(Benchmark, f64)> = Benchmark::ALL
        .into_iter()
        .map(|b| {
            let c = mini_campaign(b, 500, 23);
            (b, c.masked_fraction())
        })
        .collect();
    let dgemm = masked.iter().find(|(b, _)| *b == Benchmark::Dgemm).expect("present").1;
    for &(b, frac) in &masked {
        if b != Benchmark::Dgemm {
            assert!(frac > dgemm - 0.02, "{b} masked {frac} should exceed dgemm {dgemm}");
        }
    }
}

#[test]
fn zero_model_suppresses_dues() {
    // Paper Fig. 5b: "the Zero model provides lower DUE" — zeroed pointers
    // and indices are valid.
    use phi_reliability::carolfi::models::FaultModel;
    let mut zero_due = 0.0;
    let mut other_due = 0.0;
    for b in [Benchmark::Dgemm, Benchmark::Lud, Benchmark::Nw] {
        let c = mini_campaign(b, 600, 31);
        let due = by_model(&c.records, PvfKind::Due);
        zero_due += due.get(FaultModel::Zero).map(|p| p.percent()).unwrap_or(0.0);
        other_due += due.get(FaultModel::Random).map(|p| p.percent()).unwrap_or(0.0);
    }
    assert!(zero_due < other_due, "zero {zero_due} vs random {other_due}");
}

#[test]
fn records_roundtrip_through_the_log_format() {
    let c = mini_campaign(Benchmark::Lavamd, 60, 41);
    let mut buf = Vec::new();
    write_log(&mut buf, &c.records).expect("write");
    let back = read_log(std::io::Cursor::new(buf)).expect("read");
    assert_eq!(back.len(), c.records.len());
    for (x, y) in c.records.iter().zip(&back) {
        // NaN-carrying mismatch samples break bitwise PartialEq; compare the
        // structure instead.
        assert_eq!(x.outcome.label(), y.outcome.label());
        if let (
            phi_reliability::carolfi::record::OutcomeRecord::Sdc(a),
            phi_reliability::carolfi::record::OutcomeRecord::Sdc(b),
        ) = (&x.outcome, &y.outcome)
        {
            assert_eq!(a.wrong, b.wrong);
            assert_eq!(a.distinct, b.distinct);
            assert_eq!(a.max_rel_err.to_bits(), b.max_rel_err.to_bits());
        }
        assert_eq!(x.mechanism, y.mechanism);
        assert_eq!(x.window, y.window);
    }
}

#[test]
fn analysis_tables_cover_all_records() {
    let c = mini_campaign(Benchmark::Clamr, 300, 53);
    let bd = OutcomeBreakdown::of(&c.records);
    assert_eq!(bd.trials, 300);
    let windows = by_window(&c.records, PvfKind::Sdc);
    let total: usize = windows.groups.values().map(|p| p.trials).sum();
    assert_eq!(total, 300, "window grouping must partition the records");
    for w in windows.groups.keys() {
        assert!(*w < Benchmark::Clamr.n_windows());
    }
}

#[test]
fn watchdog_and_crash_dues_both_occur_in_the_wild() {
    use phi_reliability::carolfi::record::{DueKind, OutcomeRecord};
    let mut crash = 0;
    let mut _timeout = 0;
    for b in [Benchmark::Dgemm, Benchmark::Clamr, Benchmark::Nw] {
        let c = mini_campaign(b, 700, 61);
        for r in &c.records {
            match &r.outcome {
                OutcomeRecord::Due(DueKind::Crash { .. }) => crash += 1,
                OutcomeRecord::Due(DueKind::Timeout) => _timeout += 1,
                _ => {}
            }
        }
    }
    assert!(crash > 0, "no crash DUEs in 2100 trials");
}
