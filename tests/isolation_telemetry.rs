//! End-to-end tests for the live observability plane: isolated warden
//! workers must relay their metrics back to the supervisor (ending the
//! `--isolate` telemetry blackout), warden retries must never double-count
//! outcome-class counters, and the `--monitor` endpoint plus the
//! `heartbeat.json` flight recorder must serve sane progress snapshots.
//!
//! These tests exercise the *process-global* monitor plumbing
//! (`carolfi::monitor::{serve_monitor, start_heartbeat, begin_campaign}`),
//! which the in-crate unit tests deliberately avoid — flipping the global
//! gate inside the carolfi test binary would race its orchestrator tests.
//! Here the globals are ours alone, serialized by [`LOCK`].

use phi_reliability::carolfi::campaign::{execute_trial_attempt, outcome_key};
use phi_reliability::carolfi::monitor::{MonitorRequest, StatusSnapshot};
use phi_reliability::carolfi::warden::{read_frame_blocking, write_frame};
use phi_reliability::carolfi::{run_campaign, run_campaign_isolated, CampaignConfig, IsolateConfig, StoreConfig};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use phi_reliability::obs;
use std::collections::BTreeMap;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Serializes the tests in this binary: they install the process-global
/// recorder, hub contents and monitor state.
static LOCK: Mutex<()> = Mutex::new(());

const BENCH: Benchmark = Benchmark::Hotspot;
const TRIALS: usize = 36;
const SEED: u64 = 4117;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/test-isolation-telemetry").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn cfg() -> CampaignConfig {
    CampaignConfig { trials: TRIALS, seed: SEED, workers: 2, n_windows: BENCH.n_windows(), ..Default::default() }
}

fn iso_cfg(mode: &str) -> IsolateConfig {
    let mut iso = IsolateConfig::new(
        std::env::current_exe().expect("test binary path"),
        vec!["monitor_worker_entry".into(), "--exact".into(), "--test-threads=1".into(), "--nocapture".into()],
        format!("{mode},{SEED},{TRIALS}"),
    );
    iso.backoff_base = std::time::Duration::from_millis(1);
    iso.backoff_cap = std::time::Duration::from_millis(10);
    iso
}

/// Installs a fresh recorder and empties the hub, so each leg of a test
/// measures only its own campaign.
fn fresh_metrics() {
    obs::install(Arc::new(obs::CounterRecorder::new()));
    obs::hub().clear();
}

/// The outcome-class counters (`*/masked|hw-masked|sdc|due`) of a snapshot.
fn outcome_counters(snap: &obs::MetricsSnapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(name, _)| {
            matches!(name.rsplit('/').next(), Some("masked" | "hw-masked" | "sdc" | "due"))
        })
        .map(|(name, &v)| (name.clone(), v))
        .collect()
}

/// Warden worker entry, mirroring `bench::maybe_run_worker`: installs its
/// own recorder (the metrics the supervisor folds back), executes trials
/// attempt-aware with outcome counting off, and — in `abort-once-<K>` mode —
/// aborts the first attempt of trial K to force a warden retry. No-op in an
/// ordinary test run.
#[test]
fn monitor_worker_entry() {
    let Some(spec) = phi_reliability::carolfi::warden::worker_spec() else { return };
    let mut parts = spec.split(',');
    let mode = parts.next().expect("spec mode").to_string();
    let seed: u64 = parts.next().expect("spec seed").parse().expect("spec seed");
    let trials: usize = parts.next().expect("spec trials").parse().expect("spec trials");
    obs::install(Arc::new(obs::CounterRecorder::new()));
    let ccfg = CampaignConfig { trials, seed, n_windows: BENCH.n_windows(), ..Default::default() };
    let g = golden(BENCH, SizeClass::Test);
    let total_steps = build(BENCH, SizeClass::Test).total_steps().max(1);
    let abort_once: Option<usize> = mode.strip_prefix("abort-once-").map(|n| n.parse().expect("abort trial"));
    let result = phi_reliability::carolfi::warden::serve(|trial, attempt| {
        if attempt == 0 && abort_once == Some(trial) {
            std::process::abort();
        }
        let mut target = build(BENCH, SizeClass::Test);
        execute_trial_attempt(BENCH.label(), &mut target, &g, &ccfg, total_steps, trial, attempt, false).0
    });
    std::process::exit(if result.is_ok() { 0 } else { 1 });
}

#[test]
fn isolated_workers_relay_metrics_into_the_supervisor_hub() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // In-process leg: the recorder sees everything directly.
    fresh_metrics();
    let reference = run_campaign(BENCH.label(), || build(BENCH, SizeClass::Test), &golden(BENCH, SizeClass::Test), &cfg());
    let in_process = obs::merged_snapshot();
    let expected_outcomes = outcome_counters(&in_process);
    assert_eq!(expected_outcomes.values().sum::<u64>(), TRIALS as u64);

    // Isolated leg: trials execute in worker processes; their counters and
    // span histograms must come back over the supervision socket.
    fresh_metrics();
    let mut sc = StoreConfig::new(tmp("relay").join("journal"));
    sc.shards = 3;
    let total_steps = build(BENCH, SizeClass::Test).total_steps().max(1);
    let stored = run_campaign_isolated(BENCH.label(), total_steps, &cfg(), &sc, &iso_cfg("plain"))
        .expect("isolated campaign")
        .expect_complete();
    assert_eq!(stored.records.len(), TRIALS);
    let merged = obs::merged_snapshot();

    // Satellite-1 contract: the supervisor counted each journaled record
    // exactly once, so the outcome-class counters match the in-process run
    // (the records themselves are bit-identical, so so must these be).
    assert_eq!(outcome_counters(&merged), expected_outcomes, "isolate must not change the telemetry footer's outcome lines");

    // The relay itself: worker-side span histograms are visible here. Every
    // trial ran `supervisor::run_trial` in a *worker* process, yet the
    // merged hub shows all of them.
    let trial_span = merged.hists.get("trial").expect("worker 'trial' spans relayed");
    assert_eq!(trial_span.count, TRIALS as u64);
    assert!(trial_span.sum_ns > 0);
    assert!(merged.counter("warden/metric_frames") > 0, "supervisor folded at least one metrics frame");
    assert!(merged.counter("warden/spawned") >= 1);

    for (a, b) in reference.records.iter().zip(&stored.records) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "trial {} must stay bit-identical",
            a.trial
        );
    }
    obs::uninstall();
}

#[test]
fn warden_retries_do_not_double_count_outcomes() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fresh_metrics();

    // Trial 7's first attempt aborts the worker; the warden respawns and
    // retries, and the second attempt succeeds. Before outcome counting
    // moved to the supervisor, the campaign ended with trials+1 outcome
    // increments (or trials-1 with the lost-attempt variant); now the
    // winning record is counted exactly once where it is journaled.
    let mut sc = StoreConfig::new(tmp("retry").join("journal"));
    sc.shards = 2;
    let total_steps = build(BENCH, SizeClass::Test).total_steps().max(1);
    let stored = run_campaign_isolated(BENCH.label(), total_steps, &cfg(), &sc, &iso_cfg("abort-once-7"))
        .expect("isolated campaign with scripted abort")
        .expect_complete();
    assert_eq!(stored.records.len(), TRIALS);

    let merged = obs::merged_snapshot();
    assert!(merged.counter("warden/retries") >= 1, "the scripted abort must have forced a retry");
    let outcomes = outcome_counters(&merged);
    assert_eq!(
        outcomes.values().sum::<u64>(),
        TRIALS as u64,
        "every trial counted exactly once despite the retry: {outcomes:?}"
    );

    // The retry is otherwise transparent: trial 7's record is the real
    // outcome, bit-identical to the uninterrupted run, and its counter
    // class agrees with the journaled record.
    let reference = run_campaign(BENCH.label(), || build(BENCH, SizeClass::Test), &golden(BENCH, SizeClass::Test), &cfg());
    assert_eq!(
        serde_json::to_string(&reference.records[7]).unwrap(),
        serde_json::to_string(&stored.records[7]).unwrap(),
        "retried trial must produce the first-attempt record"
    );
    let model = stored.records[7].model.expect("injection records carry a model");
    let key = outcome_key(model, &stored.records[7].outcome);
    assert!(outcomes.get(key).copied().unwrap_or(0) >= 1);
    obs::uninstall();
}

#[test]
fn monitor_endpoint_and_heartbeat_report_live_progress() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fresh_metrics();

    let dir = tmp("monitor");
    let socket = dir.join("live.sock");
    phi_reliability::carolfi::monitor::serve_monitor(&socket).expect("bind monitor socket");
    phi_reliability::carolfi::monitor::start_heartbeat(dir.join("heartbeat.json"));

    // Before any campaign begins the endpoint must still answer (phi-top
    // races campaign startup).
    let pending = snapshot_from(&socket);
    assert_eq!(pending.kind, "pending");
    assert_eq!(pending.pid, std::process::id());

    let mut sc = StoreConfig::new(dir.join("journal"));
    sc.shards = 3;
    let total_steps = build(BENCH, SizeClass::Test).total_steps().max(1);
    let stored = run_campaign_isolated(BENCH.label(), total_steps, &cfg(), &sc, &iso_cfg("plain"))
        .expect("isolated campaign")
        .expect_complete();
    assert_eq!(stored.records.len(), TRIALS);

    // One-shot snapshot after completion: gauges, shard table and mix must
    // all add up.
    let s = snapshot_from(&socket);
    assert_eq!(s.label, BENCH.label());
    assert_eq!(s.kind, "inject");
    assert!(s.finished);
    assert_eq!(s.total, TRIALS as u64);
    assert_eq!(s.done, TRIALS as u64);
    assert_eq!(s.shards.len(), 3);
    for sh in &s.shards {
        assert!(sh.sealed, "shard {} must be sealed", sh.shard);
        assert_eq!(sh.done, sh.total);
    }
    let mix_total = s.mix.masked + s.mix.hw_masked + s.mix.sdc + s.mix.due;
    assert_eq!(mix_total, TRIALS as u64, "outcome mix covers every trial: {:?}", s.mix);
    assert!(s.workers.spawned >= 1);
    assert!(s.workers.metric_frames >= 1);
    assert!(s.trials_per_sec >= 0.0);
    assert!(s.elapsed_secs > 0.0);

    // Subscribe mode: the same connection streams frames.
    let mut stream = UnixStream::connect(&socket).expect("connect subscribe");
    write_frame(&mut stream, &MonitorRequest::Subscribe { interval_ms: 60 }).expect("send subscribe");
    let first: StatusSnapshot = read_frame_blocking(&mut stream).expect("first streamed frame");
    let second: StatusSnapshot = read_frame_blocking(&mut stream).expect("second streamed frame");
    assert!(first.finished && second.finished);
    assert!(second.elapsed_secs >= first.elapsed_secs);
    drop(stream);

    // The heartbeat flight recorder holds the same schema; the final
    // `complete_campaign` flush makes it current even if the periodic
    // writer never fired.
    let raw = std::fs::read_to_string(dir.join("heartbeat.json")).expect("heartbeat.json exists");
    let hb: StatusSnapshot = serde_json::from_str(&raw).expect("heartbeat parses as a StatusSnapshot");
    assert!(hb.finished);
    assert_eq!(hb.done, TRIALS as u64);
    assert_eq!(hb.label, BENCH.label());
    obs::uninstall();
}

/// One `Snapshot` request/response round trip against the monitor socket.
fn snapshot_from(socket: &std::path::Path) -> StatusSnapshot {
    let mut stream = UnixStream::connect(socket).expect("connect monitor socket");
    write_frame(&mut stream, &MonitorRequest::Snapshot).expect("send snapshot request");
    read_frame_blocking(&mut stream).expect("read status snapshot")
}
