//! The determinism guard for the trial hot path.
//!
//! Target pooling (`FaultTarget::reset` instead of `factory()` per trial)
//! and the bitwise fast-path compare are pure performance work: they must
//! not change a single bit of any record. This suite pins that invariant:
//!
//! * a pooled campaign at `workers = 1` equals one at `workers = 8` equals a
//!   hand-rolled factory-per-trial loop, bit for bit in serialized form, for
//!   every benchmark;
//! * the fast path (`Output::bits_equal`) agrees with the elementwise
//!   `mismatches()` scan on *equality* for arbitrary buffers, including NaN
//!   payloads and signed zeros (proptest).

use phi_reliability::carolfi::campaign::execute_trial;
use phi_reliability::carolfi::{
    run_campaign, run_campaign_isolated, CampaignConfig, FaultTarget, IsolateConfig, Output, StoreConfig, TrialRecord,
};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use proptest::prelude::*;
use std::path::PathBuf;

fn to_json(records: &[TrialRecord]) -> Vec<String> {
    records.iter().map(|r| serde_json::to_string(r).expect("record serializes")).collect()
}

#[test]
fn pooled_campaigns_are_bit_identical_for_any_worker_count() {
    for b in Benchmark::ALL {
        let g = golden(b, SizeClass::Test);
        let cfg1 = CampaignConfig { trials: 60, seed: 29, workers: 1, n_windows: b.n_windows(), ..Default::default() };
        let cfg8 = CampaignConfig { workers: 8, ..cfg1.clone() };
        let one = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg1);
        let eight = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg8);
        assert_eq!(to_json(&one.records), to_json(&eight.records), "{b}: worker count changed the records");
        assert!(one.report.pool_hits > 0, "{b}: pooling never engaged");
    }
}

#[test]
fn pooled_records_match_a_factory_per_trial_loop() {
    // The seed's semantics: a fresh `factory()` target per trial. Pooling
    // must reproduce those records exactly — this is the contract
    // `FaultTarget::reset` is held to.
    for b in Benchmark::ALL {
        let g = golden(b, SizeClass::Test);
        let cfg = CampaignConfig { trials: 60, seed: 29, workers: 4, n_windows: b.n_windows(), ..Default::default() };
        let pooled = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

        let total_steps = build(b, SizeClass::Test).total_steps().max(1);
        let fresh: Vec<TrialRecord> = (0..cfg.trials)
            .map(|trial| {
                let mut target = build(b, SizeClass::Test);
                execute_trial(b.label(), &mut target, &g, &cfg, total_steps, trial).0
            })
            .collect();
        assert_eq!(to_json(&pooled.records), to_json(&fresh), "{b}: pooling changed the records");
    }
}

/// Worker entry for the isolated-campaign pin below: when this test binary
/// is re-exec'd by a warden (socket env set) it serves real kernel trials by
/// global index; in an ordinary test run it is a no-op. Spec format (CSV,
/// since this crate keeps records opaque): `<benchmark>,<seed>,<trials>`.
#[test]
fn isolated_worker_entry() {
    let Some(spec) = phi_reliability::carolfi::warden::worker_spec() else { return };
    let mut parts = spec.split(',');
    let label = parts.next().expect("spec benchmark").to_string();
    let seed: u64 = parts.next().expect("spec seed").parse().expect("spec seed");
    let trials: usize = parts.next().expect("spec trials").parse().expect("spec trials");
    let b = Benchmark::from_label(&label).expect("spec names a known benchmark");
    let cfg = CampaignConfig { trials, seed, n_windows: b.n_windows(), ..Default::default() };
    let g = golden(b, SizeClass::Test);
    let total_steps = build(b, SizeClass::Test).total_steps().max(1);
    let result = phi_reliability::carolfi::warden::serve(|trial, _attempt| {
        let mut target = build(b, SizeClass::Test);
        execute_trial(b.label(), &mut target, &g, &cfg, total_steps, trial).0
    });
    std::process::exit(if result.is_ok() { 0 } else { 1 });
}

#[test]
fn isolated_campaigns_are_bit_identical_to_in_process() {
    // Process isolation (`--isolate`) is pure supervision: for well-behaved
    // victims not a single bit of any record may change — the same contract
    // pooling and the fast-path compare are held to above.
    for b in [Benchmark::Hotspot, Benchmark::Dgemm] {
        let g = golden(b, SizeClass::Test);
        let cfg = CampaignConfig { trials: 40, seed: 29, workers: 2, n_windows: b.n_windows(), ..Default::default() };
        let in_process = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/test-determinism-isolated").join(b.label());
        let _ = std::fs::remove_dir_all(&dir);
        let mut sc = StoreConfig::new(dir);
        sc.shards = 2;
        let mut iso = IsolateConfig::new(
            std::env::current_exe().expect("test binary path"),
            vec!["isolated_worker_entry".into(), "--exact".into(), "--test-threads=1".into(), "--nocapture".into()],
            format!("{},{},{}", b.label(), cfg.seed, cfg.trials),
        );
        iso.backoff_base = std::time::Duration::from_millis(1);
        iso.backoff_cap = std::time::Duration::from_millis(10);
        let total_steps = build(b, SizeClass::Test).total_steps().max(1);
        let isolated = run_campaign_isolated(b.label(), total_steps, &cfg, &sc, &iso)
            .expect("isolated campaign runs")
            .expect_complete();
        assert_eq!(to_json(&in_process.records), to_json(&isolated.records), "{b}: process isolation changed the records");
    }
}

proptest! {
    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_f64(
        bits_a in proptest::collection::vec(any::<u64>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..64,
    ) {
        // Arbitrary u64 bit patterns reinterpreted as f64 cover NaN payloads,
        // infinities, signed zeros and subnormals.
        let data_a: Vec<f64> = bits_a.iter().map(|&b| f64::from_bits(b)).collect();
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] = f64::from_bits(data_b[i].to_bits() ^ (1u64 << flip_bit));
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::F64Grid { dims, data: data_a };
        let b = Output::F64Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
        prop_assert_eq!(b.bits_equal(&a), a.mismatches(&b).is_empty());
    }

    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_f32(
        bits_a in proptest::collection::vec(any::<u32>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..32,
    ) {
        // f32 grids have a 4-byte element, exercising the non-multiple-of-8
        // tail of the wordwise comparison.
        let data_a: Vec<f32> = bits_a.iter().map(|&b| f32::from_bits(b)).collect();
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] = f32::from_bits(data_b[i].to_bits() ^ (1u32 << flip_bit));
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::F32Grid { dims, data: data_a };
        let b = Output::F32Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
    }

    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_i32(
        data_a in proptest::collection::vec(any::<i32>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..32,
    ) {
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] ^= 1i32 << flip_bit;
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::I32Grid { dims, data: data_a };
        let b = Output::I32Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
    }
}
