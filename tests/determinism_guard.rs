//! The determinism guard for the trial hot path.
//!
//! Target pooling (`FaultTarget::reset` instead of `factory()` per trial)
//! and the bitwise fast-path compare are pure performance work: they must
//! not change a single bit of any record. This suite pins that invariant:
//!
//! * a pooled campaign at `workers = 1` equals one at `workers = 8` equals a
//!   hand-rolled factory-per-trial loop, bit for bit in serialized form, for
//!   every benchmark;
//! * the fast path (`Output::bits_equal`) agrees with the elementwise
//!   `mismatches()` scan on *equality* for arbitrary buffers, including NaN
//!   payloads and signed zeros (proptest).

use phi_reliability::carolfi::campaign::execute_trial;
use phi_reliability::carolfi::{run_campaign, CampaignConfig, Output, TrialRecord};
use phi_reliability::kernels::{build, golden, Benchmark, SizeClass};
use proptest::prelude::*;

fn to_json(records: &[TrialRecord]) -> Vec<String> {
    records.iter().map(|r| serde_json::to_string(r).expect("record serializes")).collect()
}

#[test]
fn pooled_campaigns_are_bit_identical_for_any_worker_count() {
    for b in Benchmark::ALL {
        let g = golden(b, SizeClass::Test);
        let cfg1 = CampaignConfig { trials: 60, seed: 29, workers: 1, n_windows: b.n_windows(), ..Default::default() };
        let cfg8 = CampaignConfig { workers: 8, ..cfg1.clone() };
        let one = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg1);
        let eight = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg8);
        assert_eq!(to_json(&one.records), to_json(&eight.records), "{b}: worker count changed the records");
        assert!(one.report.pool_hits > 0, "{b}: pooling never engaged");
    }
}

#[test]
fn pooled_records_match_a_factory_per_trial_loop() {
    // The seed's semantics: a fresh `factory()` target per trial. Pooling
    // must reproduce those records exactly — this is the contract
    // `FaultTarget::reset` is held to.
    for b in Benchmark::ALL {
        let g = golden(b, SizeClass::Test);
        let cfg = CampaignConfig { trials: 60, seed: 29, workers: 4, n_windows: b.n_windows(), ..Default::default() };
        let pooled = run_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

        let total_steps = build(b, SizeClass::Test).total_steps().max(1);
        let fresh: Vec<TrialRecord> = (0..cfg.trials)
            .map(|trial| {
                let mut target = build(b, SizeClass::Test);
                execute_trial(b.label(), &mut target, &g, &cfg, total_steps, trial).0
            })
            .collect();
        assert_eq!(to_json(&pooled.records), to_json(&fresh), "{b}: pooling changed the records");
    }
}

proptest! {
    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_f64(
        bits_a in proptest::collection::vec(any::<u64>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..64,
    ) {
        // Arbitrary u64 bit patterns reinterpreted as f64 cover NaN payloads,
        // infinities, signed zeros and subnormals.
        let data_a: Vec<f64> = bits_a.iter().map(|&b| f64::from_bits(b)).collect();
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] = f64::from_bits(data_b[i].to_bits() ^ (1u64 << flip_bit));
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::F64Grid { dims, data: data_a };
        let b = Output::F64Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
        prop_assert_eq!(b.bits_equal(&a), a.mismatches(&b).is_empty());
    }

    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_f32(
        bits_a in proptest::collection::vec(any::<u32>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..32,
    ) {
        // f32 grids have a 4-byte element, exercising the non-multiple-of-8
        // tail of the wordwise comparison.
        let data_a: Vec<f32> = bits_a.iter().map(|&b| f32::from_bits(b)).collect();
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] = f32::from_bits(data_b[i].to_bits() ^ (1u32 << flip_bit));
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::F32Grid { dims, data: data_a };
        let b = Output::F32Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
    }

    #[test]
    fn fast_path_equality_agrees_with_mismatch_scan_i32(
        data_a in proptest::collection::vec(any::<i32>(), 1..40),
        flip in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bit in 0u32..32,
    ) {
        let mut data_b = data_a.clone();
        if flip {
            let i = flip_at % data_b.len();
            data_b[i] ^= 1i32 << flip_bit;
        }
        let dims = [data_a.len(), 1, 1];
        let a = Output::I32Grid { dims, data: data_a };
        let b = Output::I32Grid { dims, data: data_b };
        prop_assert_eq!(a.bits_equal(&b), b.mismatches(&a).is_empty());
    }
}
