//! # phi-reliability
//!
//! Facade crate for the Rust reproduction of *Experimental and Analytical
//! Study of Xeon Phi Reliability* (Oliveira et al., SC'17). Re-exports the
//! workspace crates so examples and integration tests have a single import
//! root:
//!
//! * [`carolfi`] — the CAROL-FI-style high-level fault injector.
//! * [`phidev`] — Knights Corner device model (topology, ECC, strike effects).
//! * [`kernels`] — the six HPC benchmarks (CLAMR, DGEMM, HotSpot, LavaMD,
//!   LUD, NW) as injectable, deterministic Rust ports.
//! * [`beamsim`] — the LANSCE neutron-beam experiment simulator.
//! * [`sdc_analysis`] — FIT/MTBF statistics, spatial-pattern classification,
//!   tolerance sweeps, PVF and time-window analysis.
//! * [`mitigation`] — ABFT, residue checking, duplication-with-comparison,
//!   parity and checkpointing cost models.
//! * [`store`] — durable campaign store: crash-safe journal, deterministic
//!   sharding and resumable orchestration (used via
//!   `carolfi::run_campaign_stored` / `beamsim::run_beam_campaign_stored`).
//! * [`obs`] — zero-dependency telemetry: counters, span histograms and the
//!   cross-process metrics hub behind `--telemetry` / `--monitor`.

pub use beamsim;
pub use carolfi;
pub use kernels;
pub use mitigation;
pub use obs;
pub use phidev;
pub use sdc_analysis;
pub use store;
